//! Sharded-service experiment: walk throughput under streaming updates as
//! the shard count grows.
//!
//! This goes beyond the paper's single-engine evaluation: it measures the
//! serving layer (`bingo-service`) — concurrent walk waves submitted while
//! mixed update batches stream through the router — and reports per-run
//! throughput, forward ratio and queue occupancy. The sweep's shape is the
//! quantity to watch: steps/s should scale with shards until the forward
//! ratio and cross-shard queueing eat the gains.

use crate::common::{timed, ExperimentConfig, ResultTable};
use bingo_core::{BingoConfig, BingoEngine};
use bingo_graph::datasets::StandinDataset;
use bingo_graph::updates::UpdateKind;
use bingo_graph::{Bias, DynamicGraph, VertexId};
use bingo_sampling::rng::Pcg64;
use bingo_sampling::stats::{chi_square, chi_square_critical_999};
use bingo_service::{ServiceConfig, WalkService};
use bingo_telemetry::Telemetry;
use bingo_walks::{DeepWalkConfig, Node2VecConfig, WalkSpec};
use rand::SeedableRng;
use std::collections::HashMap;

/// Walk-service throughput sweep over shard counts.
pub fn service(config: &ExperimentConfig) -> ResultTable {
    let mut table = ResultTable::new(
        "Service: sharded walk throughput under streaming updates",
        &[
            "shards",
            "walks",
            "steps",
            "kstep/s",
            "updates",
            "kupd/s",
            "fwd_pct",
            "queue_hwm",
            "mean_lat_ms",
        ],
    );

    for &shards in &[1usize, 2, 4, 8] {
        let (graph, batches) = config.prepare(StandinDataset::Amazon, UpdateKind::Mixed);
        // A fresh detailed handle per run (opt out via BINGO_TELEMETRY=off)
        // so each row's stats stay independent; the widest run's telemetry
        // — the one with the most cross-shard traffic — rides along in the
        // JSON summary.
        let telemetry = Telemetry::from_env(config.seed, true);
        let service = WalkService::build_with_telemetry(
            &graph,
            ServiceConfig {
                num_shards: shards,
                seed: config.seed,
                ..ServiceConfig::default()
            },
            telemetry.clone(),
        )
        .expect("service builds");
        let starts: Vec<VertexId> = (0..graph.num_vertices() as VertexId).collect();
        let spec = WalkSpec::DeepWalk(DeepWalkConfig {
            walk_length: config.walk_length,
        });

        let (results, elapsed) = timed(|| {
            // One walk wave up front, one after every update batch — walks
            // and updates interleave inside the shard workers.
            let mut tickets = vec![service.submit(spec, &starts).expect("submit")];
            for batch in &batches {
                service.ingest(batch);
                tickets.push(service.submit(spec, &starts).expect("submit"));
            }
            tickets
                .into_iter()
                .map(|t| service.wait(t))
                .collect::<Vec<_>>()
        });

        let stats = service.shutdown();
        let total_walks: usize = results.iter().map(|r| r.paths.len()).sum();
        let total_steps: u64 = stats.total_steps();
        let mean_latency_ms = results
            .iter()
            .map(|r| r.latency.as_secs_f64() * 1e3)
            .sum::<f64>()
            / results.len() as f64;
        let secs = elapsed.as_secs_f64().max(1e-9);
        table.push_row(vec![
            shards.to_string(),
            total_walks.to_string(),
            total_steps.to_string(),
            format!("{:.1}", total_steps as f64 / secs / 1e3),
            stats.total_updates_applied().to_string(),
            format!("{:.1}", stats.total_updates_applied() as f64 / secs / 1e3),
            format!("{:.1}", 100.0 * stats.forward_ratio()),
            stats
                .per_shard
                .iter()
                .map(|s| s.queue_high_water)
                .max()
                .unwrap_or(0)
                .to_string(),
            format!("{mean_latency_ms:.2}"),
        ]);
        table.attach_telemetry(&telemetry);
    }
    table
}

/// The hub graph of the node2vec equivalence experiment: vertex 0 routes
/// almost all first steps to a hub on another shard, whose fan-out mixes a
/// backtrack edge (factor 1/p), a distance-1 edge (factor 1), and
/// distance-2 edges (factor 1/q) — so the second transition's analytic
/// distribution depends on the *previous* vertex's adjacency, which a
/// sharded deployment can only know through the forwarded context.
fn node2vec_hub_graph(n: usize) -> (DynamicGraph, VertexId, Vec<(VertexId, u64)>) {
    let n = n.max(40);
    let hub = (n / 2 + n / 8) as VertexId;
    let near = (n / 4) as VertexId; // out-neighbor of vertex 0 → factor 1
    let mut graph = DynamicGraph::new(n);
    graph.insert_edge(0, hub, Bias::from_int(60)).unwrap();
    graph.insert_edge(0, near, Bias::from_int(1)).unwrap();
    let fanout: Vec<(VertexId, u64)> = vec![
        (0, 3),
        (near, 4),
        ((n / 8) as VertexId, 2),
        ((n / 3) as VertexId, 6),
        ((3 * n / 4) as VertexId, 5),
        ((n - 1) as VertexId, 1),
    ];
    for &(dst, w) in &fanout {
        graph.insert_edge(hub, dst, Bias::from_int(w)).unwrap();
    }
    for v in 1..n as u32 {
        if v != hub {
            graph
                .insert_edge(v, (v + 1) % n as u32, Bias::from_int(1))
                .unwrap();
        }
    }
    (graph, hub, fanout)
}

/// node2vec-on-service equivalence: for every shard count, run 2-step
/// node2vec walks on the hub graph through the sharded service *and* a
/// single engine, chi-squaring both against the analytic second-order
/// distribution. A sharded deployment without the forwarded adjacency
/// context would misclassify the distance-1 candidate as distance-2 and
/// fail the test decisively.
pub fn service_node2vec(config: &ExperimentConfig) -> ResultTable {
    let mut table = ResultTable::new(
        "Service: sharded node2vec vs single engine (second-order chi-square)",
        &[
            "shards",
            "trials",
            "via_hub_pct",
            "chi2_service",
            "chi2_single",
            "critical",
            "ctx_bytes_raw",
            "ctx_bytes_sent",
            "cache_hit_rate",
            "fwd",
            "pass",
        ],
    );

    let p = 0.5;
    let q = 2.0;
    let spec = WalkSpec::Node2Vec(Node2VecConfig {
        walk_length: 2,
        p,
        q,
    });
    // Scale the trial count down for quick runs (unit tests), up for real
    // ones; chi-square needs a few thousand samples per bucket.
    let trials = (400_000 / config.scale.max(1) as usize).clamp(4_000, 60_000);
    let (graph, hub, fanout) = node2vec_hub_graph(64);

    // Analytic second-step distribution out of the hub given prev = 0.
    let factor = |dst: VertexId| -> f64 {
        if dst == 0 {
            1.0 / p
        } else if graph.has_edge(0, dst) {
            1.0
        } else {
            1.0 / q
        }
    };
    let masses: Vec<f64> = fanout
        .iter()
        .map(|&(dst, w)| w as f64 * factor(dst))
        .collect();
    let total: f64 = masses.iter().sum();
    let probs: Vec<f64> = masses.iter().map(|m| m / total).collect();
    let slot: HashMap<VertexId, usize> = fanout
        .iter()
        .enumerate()
        .map(|(i, &(dst, _))| (dst, i))
        .collect();
    let critical = chi_square_critical_999(fanout.len() - 1) * 1.5;

    // Single-engine reference counts (shared across shard rows).
    let single = BingoEngine::build(&graph, BingoConfig::default()).expect("engine builds");
    let mut rng = Pcg64::seed_from_u64(config.seed ^ 0x51E5);
    let mut single_counts = vec![0usize; fanout.len()];
    for _ in 0..trials {
        let path = spec.walk(&single, 0, &mut rng);
        if path.len() == 3 && path[1] == hub {
            single_counts[slot[&path[2]]] += 1;
        }
    }
    let chi2_single = chi_square(&single_counts, &probs);

    for &shards in &[1usize, 2, 4, 8] {
        let telemetry = Telemetry::from_env(config.seed ^ shards as u64, true);
        let service = WalkService::build_with_telemetry(
            &graph,
            ServiceConfig {
                num_shards: shards,
                seed: config.seed ^ shards as u64,
                ..ServiceConfig::default()
            },
            telemetry.clone(),
        )
        .expect("service builds");
        let starts = vec![0 as VertexId; trials];
        let results = service.wait(service.submit(spec, &starts).expect("node2vec servable"));
        let mut counts = vec![0usize; fanout.len()];
        let mut via_hub = 0usize;
        for path in &results.paths {
            if path.len() == 3 && path[1] == hub {
                counts[slot[&path[2]]] += 1;
                via_hub += 1;
            }
        }
        let stats = service.shutdown();
        let chi2_service = chi_square(&counts, &probs);
        let pass = chi2_service < critical && chi2_single < critical;
        table.push_row(vec![
            shards.to_string(),
            trials.to_string(),
            format!("{:.1}", 100.0 * via_hub as f64 / trials as f64),
            format!("{chi2_service:.2}"),
            format!("{chi2_single:.2}"),
            format!("{critical:.2}"),
            stats.total_context_bytes_raw().to_string(),
            stats.total_context_bytes().to_string(),
            format!("{:.3}", stats.context_cache_hit_rate()),
            stats.total_forwards().to_string(),
            if pass { "PASS" } else { "FAIL" }.to_string(),
        ]);
        table.attach_telemetry(&telemetry);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn service_experiment_produces_one_row_per_shard_count() {
        let config = ExperimentConfig {
            scale: 8000,
            batch_size: 100,
            rounds: 2,
            walk_length: 5,
            ..ExperimentConfig::default()
        };
        let table = service(&config);
        assert_eq!(table.rows.len(), 4);
        for row in &table.rows {
            assert!(row[2].parse::<u64>().unwrap() > 0, "steps were taken");
        }
        // The run's telemetry rides along in the JSON summary: per-stage
        // latency quantiles plus the sampled-lifecycle accounting. (This
        // tiny workload may sample zero walkers, so only presence of the
        // trace accounting is asserted, not a complete lifecycle.)
        let telemetry = table.telemetry.as_deref().expect("telemetry attached");
        assert!(telemetry.contains("\"step_batch\":["), "step-batch p50/p99");
        assert!(telemetry.contains("\"submit\":["), "submit p50/p99");
        assert!(telemetry.contains("\"lifecycles_complete\":"));
        let summary = table.json_summary("service", Duration::from_secs(1));
        assert!(summary.contains("\"telemetry\":{"));
    }

    #[test]
    fn node2vec_service_experiment_passes_chi_square_at_every_shard_count() {
        let config = ExperimentConfig {
            scale: 50, // → 8000 trials
            ..ExperimentConfig::default()
        };
        let table = service_node2vec(&config);
        assert_eq!(table.rows.len(), 4);
        for row in &table.rows {
            assert_eq!(row.last().unwrap(), "PASS", "row {row:?}");
        }
        // Multi-shard rows forwarded walkers with carried context, and the
        // wave-shared snapshot cache shrank the materialized bytes.
        // This experiment's captured context (vertex 0, degree 2) is
        // smaller than a reuse handle, so bytes cannot shrink — but reuse
        // must happen and billing must never exceed the raw baseline.
        let raw: u64 = table.rows[2][6].parse().unwrap();
        let sent: u64 = table.rows[2][7].parse().unwrap();
        let hit_rate: f64 = table.rows[2][8].parse().unwrap();
        assert!(raw > 0, "4-shard run must account baseline context bytes");
        assert!(sent > 0 && sent <= raw, "billing is capped by the baseline");
        assert!(hit_rate > 0.0, "snapshot cache must be hit within a wave");
    }
}

//! One module per group of tables/figures from the paper's evaluation.
//!
//! | Experiment | Paper artefact | Function |
//! |---|---|---|
//! | Complexity microbenchmark | Table 1 | [`tables::table1`] |
//! | Dataset statistics | Table 2 | [`tables::table2`] |
//! | Bingo vs SOTA runtime & memory | Table 3 | [`tables::table3`] |
//! | Group conversion ratio | Table 4 | [`tables::table4`] |
//! | Group element ratio per distribution | Figure 9 | [`sweeps::fig9`] |
//! | Adaptive-group memory savings | Figure 11 | [`memory::fig11`] |
//! | Streaming vs batched throughput | Figure 12 | [`updates::fig12`] |
//! | BS vs GA time breakdown | Figure 13 | [`memory::fig13`] |
//! | Integer vs floating-point bias | Figure 14 | [`memory::fig14`] |
//! | Batch size / walk length / distribution sweeps | Figure 15 | [`sweeps::fig15a`] etc. |
//! | Piecewise update & sampling breakdown | Figure 16 | [`updates::fig16`] |
//! | Sharded walk-service throughput sweep | — (beyond the paper) | [`service::service`] |
//! | Exposition latency + flight-ring accounting | — (beyond the paper) | [`obs::obs`] |
//! | Sharded node2vec equivalence (chi-square) | — (beyond the paper) | [`service::service_node2vec`] |
//! | Gateway weighted fairness + AIMD sweep | — (beyond the paper) | [`gateway::gateway`] |
//! | Shim thread-team speedup + determinism | — (beyond the paper) | [`parallel::parallel`] |
//! | Serialized transport round-trip + scoped invalidation | — (beyond the paper) | [`transport::transport`] |

pub mod gateway;
pub mod memory;
pub mod obs;
pub mod parallel;
pub mod service;
pub mod sweeps;
pub mod tables;
pub mod transport;
pub mod updates;

pub use gateway::gateway;
pub use memory::{fig11, fig13, fig14};
pub use obs::obs;
pub use parallel::parallel;
pub use service::{service, service_node2vec};
pub use sweeps::{fig15a, fig15b, fig15c, fig9};
pub use tables::{table1, table2, table3, table4};
pub use transport::transport;
pub use updates::{fig12, fig16};

//! Gateway experiment: weighted fairness and adaptive admission measured
//! end to end, across a sweep of tenant weight ratios.
//!
//! Beyond the paper (which serves one submitter), this measures the
//! serving *front-end*: two tenants offer identical saturating walk
//! workloads through `bingo-gateway` to a bounded-inbox `WalkService`;
//! the table reports each ratio's completed-step share at the heavy
//! tenant's completion cut against the weight-proportional target, plus
//! queue-wait percentiles and the AIMD window range the controller
//! explored.

use crate::common::{ExperimentConfig, ResultTable};
use bingo_gateway::{AimdConfig, Gateway, GatewayConfig, TenantId};
use bingo_graph::datasets::StandinDataset;
use bingo_graph::VertexId;
use bingo_service::{PartitionStrategy, ServiceConfig, WalkRequest, WalkService};
use bingo_telemetry::Telemetry;
use bingo_walks::{DeepWalkConfig, WalkSpec};
use rand::RngCore;
use std::sync::Arc;
use std::time::Duration;

/// Two-tenant fairness sweep over weight ratios.
pub fn gateway(config: &ExperimentConfig) -> ResultTable {
    let mut table = ResultTable::new(
        "Gateway: weighted fairness and AIMD admission (two tenants, saturating load)",
        &[
            "weights",
            "walks",
            "share_meas",
            "share_want",
            "delta_pp",
            "p50_wait_ms",
            "p99_wait_ms",
            "requeues",
            "win_range",
            "pass",
        ],
    );

    // Offered walks per tenant, scaled down for quick runs.
    let offered = (400_000 / config.scale.max(1) as usize).clamp(1_000, 20_000);
    let spec = WalkSpec::DeepWalk(DeepWalkConfig {
        walk_length: config.walk_length.clamp(4, 20),
    });

    for &weight in &[1u32, 2, 4, 8] {
        let mut rng = config.rng(0x6A7E ^ u64::from(weight));
        let graph = StandinDataset::Amazon.build(config.scale, &mut rng);
        let num_vertices = graph.num_vertices();
        // One detailed handle per ratio (opt out via BINGO_TELEMETRY=off);
        // the gateway inherits it from the service, so queue-wait and
        // dispatch latencies land in the same registry as the shard-side
        // stages and lifecycles stitch across both layers.
        let telemetry = Telemetry::from_env(config.seed ^ u64::from(weight), true);
        let service = Arc::new(
            WalkService::build_with_telemetry(
                &graph,
                ServiceConfig {
                    num_shards: 4,
                    seed: config.seed ^ u64::from(weight),
                    max_inbox: 64,
                    partition: PartitionStrategy::DegreeBalanced,
                    ..ServiceConfig::default()
                },
                telemetry.clone(),
            )
            .expect("service builds"),
        );
        let gw = Gateway::new(
            service,
            GatewayConfig {
                chunk_walkers: 32,
                quantum_walkers: 32,
                window: AimdConfig {
                    initial: 64,
                    min: 32,
                    max: 256,
                    ..AimdConfig::default()
                },
                ..GatewayConfig::default()
            },
        );

        let heavy = TenantId::new("heavy");
        let light = TenantId::new("light");
        let per_request = 100usize;
        let requests = offered.div_ceil(per_request);
        let mut starts = |n: usize| -> Vec<VertexId> {
            (0..n)
                .map(|_| (rng.next_u64() % num_vertices as u64) as VertexId)
                .collect()
        };
        let mut tickets = Vec::new();
        for _ in 0..requests {
            tickets.push(
                gw.submit(
                    WalkRequest::spec(spec)
                        .starts(starts(per_request))
                        .tenant("heavy")
                        .weight(weight),
                )
                .expect("queued"),
            );
            tickets.push(
                gw.submit(
                    WalkRequest::spec(spec)
                        .starts(starts(per_request))
                        .tenant("light")
                        .weight(1),
                )
                .expect("queued"),
            );
        }

        // Fairness cut: completed-step shares when the heavy tenant's
        // offered load finishes (both tenants backlogged until then).
        let offered_walks = (requests * per_request) as u64;
        let (heavy_cut, light_cut) = loop {
            let stats = gw.stats();
            if stats.tenant(&heavy).map_or(0, |t| t.completed_walks) >= offered_walks {
                break (
                    stats.tenant(&heavy).map_or(0, |t| t.completed_steps),
                    stats.tenant(&light).map_or(0, |t| t.completed_steps),
                );
            }
            std::thread::sleep(Duration::from_micros(200));
        };
        for t in tickets {
            gw.wait(t).expect("no submission fails");
        }
        let stats = gw.shutdown();

        let share = heavy_cut as f64 / (heavy_cut + light_cut).max(1) as f64;
        let want = f64::from(weight) / f64::from(weight + 1);
        let delta_pp = (share - want).abs() * 100.0;
        let heavy_t = stats.tenant(&heavy).expect("heavy row");
        let light_t = stats.tenant(&light).expect("light row");
        let pass = delta_pp <= 10.0
            && heavy_t.failed_walks + light_t.failed_walks == 0
            && stats.total_completed_walks() == 2 * offered_walks;
        table.push_row(vec![
            format!("{weight}:1"),
            (2 * offered_walks).to_string(),
            format!("{:.3}", share),
            format!("{:.3}", want),
            format!("{delta_pp:.1}"),
            format!("{:.2}", heavy_t.wait_p50.as_secs_f64() * 1e3),
            format!("{:.2}", heavy_t.wait_p99.as_secs_f64() * 1e3),
            (heavy_t.saturated_requeues + light_t.saturated_requeues).to_string(),
            format!("{}..{}", stats.window_min_seen, stats.window_max_seen),
            if pass { "PASS" } else { "FAIL" }.to_string(),
        ]);
        table.attach_telemetry(&telemetry);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gateway_experiment_is_weight_proportional_at_every_ratio() {
        let config = ExperimentConfig {
            scale: 400, // → 1000 offered walks per tenant
            walk_length: 8,
            ..ExperimentConfig::default()
        };
        let table = gateway(&config);
        assert_eq!(table.rows.len(), 4);
        // The experiment's own PASS bound (10pp) holds in release-mode
        // runs and is asserted end to end by `examples/gateway_fairness`
        // in CI. This unit test runs a tiny debug-build workload
        // concurrently with the rest of the suite, where scheduling noise
        // widens the cut — assert a looser proportionality bound here.
        // Drops or failed submissions still panic inside the experiment.
        for row in &table.rows {
            let delta_pp: f64 = row[4].parse().unwrap();
            assert!(
                delta_pp <= 20.0,
                "share not weight-proportional even loosely: row {row:?}"
            );
            assert!(row[1].parse::<u64>().unwrap() >= 2000, "walks served");
        }
        // Gateway-side stages land in the attached telemetry alongside the
        // service's: the summary reports the full request path.
        let telemetry = table.telemetry.as_deref().expect("telemetry attached");
        assert!(telemetry.contains("\"queue_wait\":["), "DRR wait p50/p99");
        assert!(telemetry.contains("\"dispatch\":["), "dispatch p50/p99");
        assert!(telemetry.contains("\"step_batch\":["), "shard-side stages");
    }
}

//! Figures 9 and 15: parameter sweeps.

use crate::common::{fmt_mib, ExperimentConfig, ResultTable};
use crate::experiments::memory::dataset_with_bias;
use bingo_baselines::GSamplerBaseline;
use bingo_core::{radix, BingoConfig, BingoEngine};
use bingo_graph::datasets::StandinDataset;
use bingo_graph::generators::BiasDistribution;
use bingo_graph::updates::{UpdateKind, UpdateStreamBuilder};
use bingo_walks::{DeepWalkConfig, EvaluationWorkflow, IngestMode, WalkSpec};
use rand::Rng;

/// Figure 9 — fraction of edges that fall into each radix group for
/// uniform, Gaussian and power-law bias distributions (10-bit biases).
pub fn fig9(config: &ExperimentConfig) -> ResultTable {
    let distributions = [
        ("Uniform", BiasDistribution::UniformInt { lo: 1, hi: 1023 }),
        (
            "Gauss",
            BiasDistribution::Gaussian {
                mean: 512.0,
                std_dev: 128.0,
            },
        ),
        (
            "Power-law",
            BiasDistribution::PowerLaw {
                alpha: 2.0,
                max: 1023,
            },
        ),
    ];
    let mut table = ResultTable::new(
        "Figure 9: group element ratio per radix group (10-bit biases)",
        &[
            "distribution",
            "g0",
            "g1",
            "g2",
            "g3",
            "g4",
            "g5",
            "g6",
            "g7",
            "g8",
            "g9",
        ],
    );
    let samples = 100_000usize;
    for (name, dist) in distributions {
        let mut rng = config.rng(9 ^ samples as u64 ^ name.len() as u64);
        let mut counts = [0usize; 10];
        for _ in 0..samples {
            let bias = dist.sample(&mut rng, 0).value() as u64;
            for bit in radix::decompose(bias.min(1023)) {
                if (bit as usize) < 10 {
                    counts[bit as usize] += 1;
                }
            }
        }
        let mut row = vec![name.to_string()];
        for c in counts {
            row.push(format!("{:.3}", c as f64 / samples as f64));
        }
        table.push_row(row);
    }
    table
}

/// Figure 15(a) — runtime of gSampler vs Bingo for a fixed number of
/// updates ingested in varying batch sizes (LiveJournal stand-in).
pub fn fig15a(config: &ExperimentConfig) -> ResultTable {
    let total_updates = (config.batch_size * config.rounds).max(1000);
    let batch_sizes: Vec<usize> = [10, 25, 50, 75, 100]
        .iter()
        .map(|pct| (total_updates * pct / 100).max(1))
        .collect();
    let mut table = ResultTable::new(
        format!(
            "Figure 15a: runtime (s) vs batch size — {total_updates} total updates, LJ stand-in"
        ),
        &["batch_size", "gSampler_s", "Bingo_s"],
    );
    let spec = WalkSpec::DeepWalk(DeepWalkConfig {
        walk_length: config.walk_length,
    });
    for &batch_size in &batch_sizes {
        let sweep_config = ExperimentConfig {
            batch_size,
            rounds: total_updates.div_ceil(batch_size),
            ..*config
        };
        let (graph, batches) = sweep_config.prepare(StandinDataset::LiveJournal, UpdateKind::Mixed);
        let workflow = EvaluationWorkflow::new(spec, IngestMode::Batched);
        let mut gs = GSamplerBaseline::build(&graph);
        let gs_report = workflow.run(&mut gs, &batches);
        let mut bingo = BingoEngine::build(&graph, BingoConfig::default()).unwrap();
        let bingo_report = workflow.run(&mut bingo, &batches);
        table.push_row(vec![
            batch_size.to_string(),
            format!("{:.3}", gs_report.total_time().as_secs_f64()),
            format!("{:.3}", bingo_report.total_time().as_secs_f64()),
        ]);
    }
    table
}

/// Figure 15(b) — runtime of gSampler vs Bingo at increasing walk lengths.
pub fn fig15b(config: &ExperimentConfig) -> ResultTable {
    let walk_lengths = [20usize, 40, 60, 80, 100];
    let mut table = ResultTable::new(
        "Figure 15b: runtime (s) vs walk length (LJ stand-in, mixed updates)",
        &["walk_length", "gSampler_s", "Bingo_s"],
    );
    let (graph, batches) = config.prepare(StandinDataset::LiveJournal, UpdateKind::Mixed);
    for &walk_length in &walk_lengths {
        let spec = WalkSpec::DeepWalk(DeepWalkConfig { walk_length });
        let workflow = EvaluationWorkflow::new(spec, IngestMode::Batched);
        let mut gs = GSamplerBaseline::build(&graph);
        let gs_report = workflow.run(&mut gs, &batches);
        let mut bingo = BingoEngine::build(&graph, BingoConfig::default()).unwrap();
        let bingo_report = workflow.run(&mut bingo, &batches);
        table.push_row(vec![
            walk_length.to_string(),
            format!("{:.3}", gs_report.total_time().as_secs_f64()),
            format!("{:.3}", bingo_report.total_time().as_secs_f64()),
        ]);
    }
    table
}

/// Figure 15(c) — Bingo's runtime and memory under different bias
/// distributions.
pub fn fig15c(config: &ExperimentConfig) -> ResultTable {
    let distributions = [
        ("Uniform", BiasDistribution::UniformInt { lo: 1, hi: 255 }),
        (
            "Gauss",
            BiasDistribution::Gaussian {
                mean: 128.0,
                std_dev: 32.0,
            },
        ),
        (
            "Power-law",
            BiasDistribution::PowerLaw {
                alpha: 2.0,
                max: 255,
            },
        ),
    ];
    let mut table = ResultTable::new(
        "Figure 15c: Bingo runtime (s) and memory (MiB) vs bias distribution (LJ stand-in)",
        &["distribution", "time_s", "memory_MiB"],
    );
    let spec = WalkSpec::DeepWalk(DeepWalkConfig {
        walk_length: config.walk_length,
    });
    for (name, dist) in distributions {
        let mut graph = dataset_with_bias(config, StandinDataset::LiveJournal, dist, 15);
        let mut rng = config.rng(150 + name.len() as u64);
        let total = config.batch_size * config.rounds;
        let stream = UpdateStreamBuilder::new(UpdateKind::Mixed, total.min(graph.num_edges() / 2))
            .build(&mut graph, total, &mut rng);
        let batches = stream.chunks(config.batch_size.max(1));
        let workflow = EvaluationWorkflow::new(spec, IngestMode::Batched);
        let mut engine = BingoEngine::build(&graph, BingoConfig::default()).unwrap();
        let report = workflow.run(&mut engine, &batches);
        table.push_row(vec![
            name.to_string(),
            format!("{:.3}", report.total_time().as_secs_f64()),
            fmt_mib(report.memory_bytes),
        ]);
    }
    table
}

#[allow(dead_code)]
fn silence_unused_rng_bound<R: Rng>(_: &mut R) {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::tables::smoke_config;

    #[test]
    fn fig9_rows_follow_the_expected_shapes() {
        let t = fig9(&smoke_config());
        assert_eq!(t.rows.len(), 3);
        // Uniform biases: every bit set with probability ~0.5.
        let uniform: Vec<f64> = t.rows[0][1..].iter().map(|s| s.parse().unwrap()).collect();
        for &r in &uniform {
            assert!(
                (r - 0.5).abs() < 0.05,
                "uniform ratios should hover at 0.5: {r}"
            );
        }
        // Power-law biases: low bits far more populated than high bits.
        let power: Vec<f64> = t.rows[2][1..].iter().map(|s| s.parse().unwrap()).collect();
        assert!(power[0] > power[9] + 0.2);
    }

    #[test]
    fn fig15a_runtime_decreases_or_holds_with_larger_batches() {
        let mut config = smoke_config();
        config.scale = 16_000;
        config.batch_size = 300;
        config.rounds = 2;
        let t = fig15a(&config);
        assert_eq!(t.rows.len(), 5);
        let first: f64 = t.rows[0][2].parse().unwrap();
        let last: f64 = t.rows[4][2].parse().unwrap();
        // Larger batches should not be dramatically slower for Bingo.
        assert!(last <= first * 3.0 + 0.5);
    }

    #[test]
    fn fig15b_sweeps_five_walk_lengths() {
        let mut config = smoke_config();
        config.scale = 16_000;
        let t = fig15b(&config);
        assert_eq!(t.rows.len(), 5);
        assert_eq!(t.rows[0][0], "20");
        assert_eq!(t.rows[4][0], "100");
        for row in &t.rows {
            assert!(row[1].parse::<f64>().unwrap() >= 0.0);
            assert!(row[2].parse::<f64>().unwrap() >= 0.0);
        }
    }

    #[test]
    fn fig15c_covers_three_distributions() {
        let mut config = smoke_config();
        config.scale = 16_000;
        let t = fig15c(&config);
        assert_eq!(t.rows.len(), 3);
        for row in &t.rows {
            assert!(row[2].parse::<f64>().unwrap() > 0.0);
        }
    }
}

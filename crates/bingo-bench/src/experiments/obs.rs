//! Observability experiment: endpoint round-trip latency of the
//! exposition server and the flight ring's capacity accounting, measured
//! against a live serving stack.
//!
//! Beyond the paper: the introspection plane must be cheap enough to
//! scrape while the stack serves walks. A small sharded service runs a
//! wave workload to populate the registry, then each endpoint is fetched
//! `rounds × 8` times over plain `TcpStream`s and the per-endpoint p50 /
//! max round-trip times are gated (a scrape must never take a meaningful
//! fraction of a dispatch tick). A final row checks the flight ring:
//! configured capacity, events recorded by the run, and the exact drop
//! counter.

use crate::common::{ExperimentConfig, ResultTable};
use bingo_graph::datasets::StandinDataset;
use bingo_graph::VertexId;
use bingo_obs::{ObsConfig, ObsServer};
use bingo_service::{PartitionStrategy, ServiceConfig, WalkService};
use bingo_telemetry::{Telemetry, TelemetryConfig};
use bingo_walks::{DeepWalkConfig, WalkSpec};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Round-trip bound for the PASS column: generous enough for debug builds
/// and loaded CI machines, tight enough to catch a scrape that serializes
/// against the serving path.
const MAX_P50: Duration = Duration::from_millis(50);
const MAX_WORST: Duration = Duration::from_millis(500);

fn fetch(addr: SocketAddr, path: &str) -> (usize, Duration) {
    let start = Instant::now();
    let mut stream = TcpStream::connect(addr).expect("connect to obs server");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("set read timeout");
    stream
        .write_all(format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes())
        .expect("send request");
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .expect("read response to close");
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, body)| body.len())
        .unwrap_or(0);
    (body, start.elapsed())
}

/// Exposition endpoint latency + flight-ring accounting.
pub fn obs(config: &ExperimentConfig) -> ResultTable {
    let mut table = ResultTable::new(
        "Observability: exposition round-trip latency and flight-ring accounting",
        &["probe", "fetches", "p50_us", "max_us", "value", "pass"],
    );

    let flight_capacity = 512usize;
    let telemetry = Telemetry::new(TelemetryConfig {
        detailed: true,
        trace_seed: config.seed,
        flight_capacity,
        ..TelemetryConfig::default()
    });
    let mut rng = config.rng(0x0B5);
    let graph = StandinDataset::Amazon.build(config.scale, &mut rng);
    let service = Arc::new(
        WalkService::build_with_telemetry(
            &graph,
            ServiceConfig {
                num_shards: 4,
                seed: config.seed,
                partition: PartitionStrategy::DegreeBalanced,
                ..ServiceConfig::default()
            },
            telemetry.clone(),
        )
        .expect("service builds"),
    );
    // Populate every metric family the endpoints render: walk waves record
    // steps, forwards, lifecycle traces and flight events.
    let starts: Vec<VertexId> = (0..graph.num_vertices() as VertexId).collect();
    let spec = WalkSpec::DeepWalk(DeepWalkConfig {
        walk_length: config.walk_length.clamp(4, 20),
    });
    for _ in 0..config.rounds.max(1) {
        let ticket = service.submit(spec, &starts).expect("submit wave");
        service.wait(ticket);
    }

    let server = ObsServer::serve(
        ObsConfig::default(),
        telemetry.clone(),
        Some(Arc::clone(&service)),
        None,
    )
    .expect("bind an ephemeral loopback port");
    let addr = server.local_addr();

    let fetches = (config.rounds.max(1) * 8).max(16);
    for path in ["/metrics", "/status", "/healthz", "/flight"] {
        let mut latencies = Vec::with_capacity(fetches);
        let mut last_bytes = 0usize;
        for _ in 0..fetches {
            let (bytes, elapsed) = fetch(addr, path);
            last_bytes = bytes;
            latencies.push(elapsed);
        }
        latencies.sort_unstable();
        let p50 = latencies[latencies.len() / 2];
        let worst = *latencies.last().expect("at least one fetch");
        let pass = last_bytes > 0 && p50 <= MAX_P50 && worst <= MAX_WORST;
        table.push_row(vec![
            path.to_string(),
            fetches.to_string(),
            p50.as_micros().to_string(),
            worst.as_micros().to_string(),
            format!("{last_bytes}B"),
            if pass { "PASS" } else { "FAIL" }.to_string(),
        ]);
    }
    server.shutdown();

    // Flight-ring accounting: the ring must hold what it was configured to
    // hold, and the drop counter must be exactly recorded − capacity once
    // the ring has wrapped (zero before).
    let flight = telemetry.flight();
    let recorded = flight.recorded();
    let expected_drops = recorded.saturating_sub(flight_capacity as u64);
    let pass = flight.capacity() == flight_capacity
        && recorded > 0
        && flight.dropped() == expected_drops
        && flight.events().len() <= flight_capacity;
    table.push_row(vec![
        "flight-ring".to_string(),
        "-".to_string(),
        "-".to_string(),
        "-".to_string(),
        format!(
            "cap={} rec={recorded} drop={}",
            flight.capacity(),
            flight.dropped()
        ),
        if pass { "PASS" } else { "FAIL" }.to_string(),
    ]);
    table.attach_telemetry(&telemetry);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obs_experiment_serves_and_accounts() {
        let config = ExperimentConfig {
            scale: 4000,
            rounds: 2,
            walk_length: 8,
            ..ExperimentConfig::default()
        };
        let table = obs(&config);
        assert_eq!(table.rows.len(), 5);
        // Latency gates can wobble on a loaded debug-build test machine;
        // what must hold unconditionally is that every endpoint returned a
        // body and the flight-ring accounting row passed.
        for row in &table.rows {
            assert_ne!(row[4], "0B", "endpoint returned an empty body: {row:?}");
        }
        let ring = table.rows.last().expect("flight-ring row");
        assert_eq!(ring[0], "flight-ring");
        assert_eq!(ring[5], "PASS", "flight accounting must be exact: {ring:?}");
    }
}

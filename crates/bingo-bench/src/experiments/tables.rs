//! Tables 1–4 of the paper.

use crate::common::{fmt_mib, timed, ExperimentConfig, ResultTable};
use bingo_baselines::{FlowWalkerBaseline, GSamplerBaseline, KnightKingBaseline};
use bingo_core::{BingoConfig, BingoEngine, VertexSpace};
use bingo_graph::adjacency::{AdjacencyList, Edge};
use bingo_graph::datasets::StandinDataset;
use bingo_graph::updates::UpdateKind;
use bingo_graph::Bias;
use bingo_sampling::{AliasTable, CdfTable, DynamicSampler, RejectionSampler, Sampler};
use bingo_walks::{
    DeepWalkConfig, EvaluationWorkflow, IngestMode, Node2VecConfig, PprConfig, WalkSpec,
};
use rand::Rng;

/// Table 1 — complexity comparison of Bingo vs alias / ITS / rejection.
///
/// The paper's Table 1 is analytical; this experiment validates it
/// empirically by measuring per-operation cost at increasing degrees and
/// reporting how the cost grows from the smallest to the largest degree
/// (≈ 1 means constant, ≈ d-ratio means linear).
pub fn table1(config: &ExperimentConfig) -> ResultTable {
    let degrees = [256usize, 1024, 4096, 16384];
    let mut rng = config.rng(1);
    let samples_per_op = 2000;

    #[derive(Default, Clone, Copy)]
    struct Costs {
        insert_ns: f64,
        delete_ns: f64,
        sample_ns: f64,
    }

    let mut measure = |degree: usize| -> [Costs; 4] {
        let biases: Vec<u64> = (0..degree).map(|_| rng.gen_range(1..1024u64)).collect();
        let weights: Vec<f64> = biases.iter().map(|&b| b as f64).collect();
        let mut out = [Costs::default(); 4];

        // Bingo vertex space.
        let mut adj = AdjacencyList::new();
        for (i, &b) in biases.iter().enumerate() {
            adj.push(Edge::new(i as u32, Bias::from_int(b)));
        }
        let mut space = VertexSpace::build(adj, BingoConfig::default());
        let (_, t) = timed(|| {
            for i in 0..samples_per_op {
                space
                    .insert((degree + i) as u32, Bias::from_int(1 + (i as u64 % 1023)))
                    .unwrap();
            }
        });
        out[0].insert_ns = t.as_nanos() as f64 / samples_per_op as f64;
        let (_, t) = timed(|| {
            for i in 0..samples_per_op {
                space.delete((degree + i) as u32).unwrap();
            }
        });
        out[0].delete_ns = t.as_nanos() as f64 / samples_per_op as f64;
        let mut srng = config.rng(2);
        let (_, t) = timed(|| {
            for _ in 0..samples_per_op {
                std::hint::black_box(space.sample_index(&mut srng));
            }
        });
        out[0].sample_ns = t.as_nanos() as f64 / samples_per_op as f64;

        // Alias table.
        let mut alias = AliasTable::new(&weights).unwrap();
        let (_, t) = timed(|| {
            for i in 0..200 {
                alias.insert((i % 1023) as f64 + 1.0).unwrap();
            }
        });
        out[1].insert_ns = t.as_nanos() as f64 / 200.0;
        let (_, t) = timed(|| {
            for _ in 0..200 {
                alias.remove(alias.len() - 1).unwrap();
            }
        });
        out[1].delete_ns = t.as_nanos() as f64 / 200.0;
        let (_, t) = timed(|| {
            for _ in 0..samples_per_op {
                std::hint::black_box(alias.sample(&mut srng));
            }
        });
        out[1].sample_ns = t.as_nanos() as f64 / samples_per_op as f64;

        // ITS (CDF table).
        let mut its = CdfTable::new(&weights).unwrap();
        let (_, t) = timed(|| {
            for i in 0..samples_per_op {
                its.insert((i % 1023) as f64 + 1.0).unwrap();
            }
        });
        out[2].insert_ns = t.as_nanos() as f64 / samples_per_op as f64;
        let (_, t) = timed(|| {
            for _ in 0..200 {
                its.remove(0).unwrap();
            }
        });
        out[2].delete_ns = t.as_nanos() as f64 / 200.0;
        let (_, t) = timed(|| {
            for _ in 0..samples_per_op {
                std::hint::black_box(its.sample(&mut srng));
            }
        });
        out[2].sample_ns = t.as_nanos() as f64 / samples_per_op as f64;

        // Rejection sampling.
        let mut rej = RejectionSampler::new(&weights).unwrap();
        let (_, t) = timed(|| {
            for i in 0..samples_per_op {
                rej.insert((i % 1023) as f64 + 1.0).unwrap();
            }
        });
        out[3].insert_ns = t.as_nanos() as f64 / samples_per_op as f64;
        let (_, t) = timed(|| {
            for _ in 0..200 {
                rej.remove(0).unwrap();
            }
        });
        out[3].delete_ns = t.as_nanos() as f64 / 200.0;
        let (_, t) = timed(|| {
            for _ in 0..samples_per_op {
                std::hint::black_box(rej.sample(&mut srng));
            }
        });
        out[3].sample_ns = t.as_nanos() as f64 / samples_per_op as f64;
        out
    };

    let names = ["Bingo", "Alias", "ITS", "Rejection"];
    let mut table = ResultTable::new(
        "Table 1: per-operation cost (ns) vs degree — Bingo vs Alias/ITS/Rejection",
        &["method", "degree", "insert_ns", "delete_ns", "sample_ns"],
    );
    for &d in &degrees {
        let costs = measure(d);
        for (i, name) in names.iter().enumerate() {
            table.push_row(vec![
                name.to_string(),
                d.to_string(),
                format!("{:.0}", costs[i].insert_ns),
                format!("{:.0}", costs[i].delete_ns),
                format!("{:.0}", costs[i].sample_ns),
            ]);
        }
    }
    table
}

/// Table 2 — dataset statistics: the paper's graphs and the generated
/// stand-ins actually used in this reproduction.
pub fn table2(config: &ExperimentConfig) -> ResultTable {
    let mut table = ResultTable::new(
        format!(
            "Table 2: datasets (paper) and stand-ins (scale 1/{})",
            config.scale
        ),
        &[
            "dataset",
            "abbr",
            "paper_V",
            "paper_E",
            "paper_avg_deg",
            "paper_max_deg",
            "standin_V",
            "standin_E",
            "standin_avg_deg",
            "standin_max_deg",
        ],
    );
    for dataset in StandinDataset::all() {
        let spec = dataset.spec();
        let mut rng = config.rng(spec.paper_vertices);
        let g = dataset.build(config.scale, &mut rng);
        table.push_row(vec![
            spec.name.to_string(),
            spec.abbrev.to_string(),
            spec.paper_vertices.to_string(),
            spec.paper_edges.to_string(),
            format!("{:.1}", spec.paper_avg_degree),
            spec.paper_max_degree.to_string(),
            g.num_vertices().to_string(),
            g.num_edges().to_string(),
            format!("{:.1}", g.avg_degree()),
            g.max_degree().to_string(),
        ]);
    }
    table
}

fn walk_spec(app: &str, config: &ExperimentConfig) -> WalkSpec {
    match app {
        "DeepWalk" => WalkSpec::DeepWalk(DeepWalkConfig {
            walk_length: config.walk_length,
        }),
        "node2vec" => WalkSpec::Node2Vec(Node2VecConfig {
            walk_length: config.walk_length,
            p: 0.5,
            q: 2.0,
        }),
        "PPR" => WalkSpec::Ppr(PprConfig {
            stop_probability: 1.0 / config.walk_length.max(1) as f64,
            max_length: config.walk_length * 10,
        }),
        other => panic!("unknown application {other}"),
    }
}

/// Table 3 — runtime and memory of Bingo vs KnightKing, gSampler and
/// FlowWalker for DeepWalk / node2vec / PPR under insertion / deletion /
/// mixed update streams, on every dataset stand-in.
pub fn table3(config: &ExperimentConfig) -> ResultTable {
    table3_filtered(
        config,
        &StandinDataset::all(),
        &["DeepWalk", "node2vec", "PPR"],
    )
}

/// Table 3 restricted to specific datasets / applications (used for quick
/// runs and by the unit tests).
pub fn table3_filtered(
    config: &ExperimentConfig,
    datasets: &[StandinDataset],
    apps: &[&str],
) -> ResultTable {
    let kinds = [
        ("Insertion", UpdateKind::InsertOnly),
        ("Deletion", UpdateKind::DeleteOnly),
        ("Mixed", UpdateKind::Mixed),
    ];
    let mut table = ResultTable::new(
        "Table 3: Bingo vs SOTA — total runtime (s) and memory (MiB)",
        &[
            "application",
            "updates",
            "dataset",
            "system",
            "runtime_s",
            "memory_MiB",
            "speedup_vs_bingo",
        ],
    );
    for &app in apps {
        for (kind_name, kind) in kinds {
            for &dataset in datasets {
                let (graph, batches) = config.prepare(dataset, kind);
                let spec = walk_spec(app, config);
                let workflow = EvaluationWorkflow::new(spec, IngestMode::Batched);

                let mut bingo = BingoEngine::build(&graph, BingoConfig::default()).unwrap();
                let bingo_report = workflow.run(&mut bingo, &batches);
                let bingo_time = bingo_report.total_time().as_secs_f64();

                let mut push = |name: &str, runtime: f64, memory: usize| {
                    let speedup = if name == "Bingo" {
                        "-".to_string()
                    } else {
                        format!("{:.2}", runtime / bingo_time.max(1e-9))
                    };
                    table.push_row(vec![
                        app.to_string(),
                        kind_name.to_string(),
                        dataset.spec().abbrev.to_string(),
                        name.to_string(),
                        format!("{runtime:.3}"),
                        fmt_mib(memory),
                        speedup,
                    ]);
                };
                push("Bingo", bingo_time, bingo_report.memory_bytes);

                let mut kk = KnightKingBaseline::build(&graph);
                let r = workflow.run(&mut kk, &batches);
                push("KnightKing", r.total_time().as_secs_f64(), r.memory_bytes);

                let mut gs = GSamplerBaseline::build(&graph);
                let r = workflow.run(&mut gs, &batches);
                push("gSampler", r.total_time().as_secs_f64(), r.memory_bytes);

                let mut fw = FlowWalkerBaseline::build(&graph);
                let r = workflow.run(&mut fw, &batches);
                push("FlowWalker", r.total_time().as_secs_f64(), r.memory_bytes);
            }
        }
    }
    table
}

/// Table 4 — group-conversion ratios while ingesting mixed updates on the
/// LiveJournal stand-in.
pub fn table4(config: &ExperimentConfig) -> ResultTable {
    use bingo_core::GroupKind;
    let (graph, batches) = config.prepare(StandinDataset::LiveJournal, UpdateKind::Mixed);
    let mut engine = BingoEngine::build(&graph, BingoConfig::default()).unwrap();
    for batch in &batches {
        engine.apply_batch(batch);
    }
    let conversions = engine.conversion_matrix();
    let kinds = [
        ("Dense", GroupKind::Dense),
        ("Regular", GroupKind::Regular),
        ("Sparse", GroupKind::Sparse),
        ("One element", GroupKind::OneElement),
    ];
    let mut table = ResultTable::new(
        "Table 4: group conversion ratio (LJ stand-in, mixed updates)",
        &["from \\ to", "Dense", "Regular", "Sparse", "One element"],
    );
    for (from_name, from) in kinds {
        let mut row = vec![from_name.to_string()];
        for (_, to) in kinds {
            if from == to {
                row.push("—".to_string());
            } else {
                row.push(format!("{:.4}%", conversions.ratio(from, to) * 100.0));
            }
        }
        table.push_row(row);
    }
    table
}

/// A tiny smoke configuration used by unit tests.
pub fn smoke_config() -> ExperimentConfig {
    ExperimentConfig {
        scale: 8000,
        batch_size: 100,
        rounds: 1,
        walk_length: 5,
        seed: 7,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_reports_all_methods_and_degrees() {
        let mut config = smoke_config();
        config.seed = 1;
        let t = table1(&config);
        assert_eq!(t.rows.len(), 4 * 4);
        assert!(t.rows.iter().any(|r| r[0] == "Bingo"));
    }

    #[test]
    fn table2_lists_five_datasets() {
        let t = table2(&smoke_config());
        assert_eq!(t.rows.len(), 5);
        assert_eq!(t.rows[0][1], "AM");
        assert_eq!(t.rows[4][1], "TW");
    }

    #[test]
    fn table3_smoke_run_has_all_systems() {
        let t = table3_filtered(&smoke_config(), &[StandinDataset::Amazon], &["DeepWalk"]);
        // 1 app × 3 kinds × 1 dataset × 4 systems.
        assert_eq!(t.rows.len(), 12);
        let systems: std::collections::HashSet<&str> =
            t.rows.iter().map(|r| r[3].as_str()).collect();
        assert_eq!(systems.len(), 4);
        // Every runtime parses as a positive float.
        for row in &t.rows {
            assert!(row[4].parse::<f64>().unwrap() >= 0.0);
        }
    }

    #[test]
    fn table4_has_four_by_four_shape() {
        let t = table4(&smoke_config());
        assert_eq!(t.rows.len(), 4);
        assert_eq!(t.rows[0].len(), 5);
        assert_eq!(t.rows[0][1], "—");
    }
}

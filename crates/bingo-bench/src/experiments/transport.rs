//! Transport experiment: what the serialized distribution boundary costs.
//!
//! Goes beyond the paper's single-machine evaluation: every cross-shard
//! forward is round-tripped through the versioned wire format of
//! `bingo_walks::wire` (encode → carry → decode → rebuild) and compared
//! with plain in-process forwarding on the same seed. Three quantities
//! matter: the walk output must be **bit-identical** (the `identical`
//! column), the per-forward wire cost (`bytes_per_fwd`) with the handle
//! hit rate that keeps it low, and the throughput delta — the price of
//! making the accounted bytes real bytes. Two final rows put scoped
//! context invalidation against the wholesale-flush baseline under
//! structural churn: the hit-rate gap is the win the two-process demo
//! gates on.

use crate::common::{timed, ExperimentConfig, ResultTable};
use bingo_graph::{Bias, DynamicGraph, UpdateBatch, UpdateEvent, VertexId};
use bingo_service::{ServiceConfig, TransportMode, WalkService};
use bingo_walks::{Node2VecConfig, WalkSpec};

const NUM_VERTICES: usize = 128;
const WAVES: usize = 3;
const CHURN_ROUNDS: u32 = 8;

/// A vertex-transitive ring with chords: out-degree 4, so an exact
/// membership snapshot (25 bytes) is larger than a 16-byte handle and
/// negotiation engages.
fn chord_graph() -> DynamicGraph {
    let n = NUM_VERTICES as u32;
    let mut g = DynamicGraph::new(NUM_VERTICES);
    for v in 0..n {
        for (shift, bias) in [(1, 3), (2, 2), (5, 2), (9, 1)] {
            g.insert_edge(v, (v + shift) % n, Bias::from_int(bias))
                .unwrap();
        }
    }
    g
}

fn spec(config: &ExperimentConfig) -> WalkSpec {
    WalkSpec::Node2Vec(Node2VecConfig {
        walk_length: config.walk_length.clamp(4, 40),
        p: 0.5,
        q: 2.0,
    })
}

fn build(config: &ExperimentConfig, shards: usize, mode: TransportMode) -> WalkService {
    let graph = chord_graph();
    WalkService::build(
        &graph,
        ServiceConfig {
            num_shards: shards,
            seed: config.seed,
            transport: mode,
            ..ServiceConfig::default()
        },
    )
    .expect("service builds")
}

/// `WAVES` identical node2vec waves from every vertex; repeat waves in
/// one epoch are what let handle negotiation hit.
fn run_waves(service: &WalkService, config: &ExperimentConfig) -> Vec<Vec<VertexId>> {
    let starts: Vec<VertexId> = (0..NUM_VERTICES as VertexId).collect();
    let mut paths = Vec::new();
    for _ in 0..WAVES {
        let results = service.wait(service.submit(spec(config), &starts).expect("submit"));
        paths.extend(results.paths);
    }
    paths
}

/// Serialized round-trip vs in-process forwarding, plus the scoped vs
/// wholesale invalidation gap under churn.
pub fn transport(config: &ExperimentConfig) -> ResultTable {
    let mut table = ResultTable::new(
        "Transport: serialized wire round-trip vs in-process forwarding",
        &[
            "mode",
            "shards",
            "walks",
            "kstep/s",
            "fwd",
            "wire_bytes",
            "bytes_per_fwd",
            "handle_hit_rate",
            "identical",
        ],
    );

    for &shards in &[2usize, 4, 8] {
        let mut baseline_paths = None;
        for mode in [TransportMode::InProcess, TransportMode::Serialized] {
            let service = build(config, shards, mode);
            let (paths, elapsed) = timed(|| run_waves(&service, config));
            let stats = service.shutdown();
            let identical = match &baseline_paths {
                None => {
                    baseline_paths = Some(paths);
                    "-".to_string()
                }
                Some(base) => if *base == paths { "yes" } else { "NO" }.to_string(),
            };
            let fwd = stats.total_forwards();
            let wire_bytes = stats.total_transport_bytes_sent();
            table.push_row(vec![
                match mode {
                    TransportMode::InProcess => "inprocess",
                    TransportMode::Serialized => "serialized",
                }
                .to_string(),
                shards.to_string(),
                stats.total_walks_completed().to_string(),
                format!(
                    "{:.1}",
                    stats.total_steps() as f64 / elapsed.as_secs_f64().max(1e-9) / 1e3
                ),
                fwd.to_string(),
                wire_bytes.to_string(),
                format!("{:.1}", wire_bytes as f64 / fwd.max(1) as f64),
                format!("{:.3}", stats.handle_hit_rate()),
                identical,
            ]);
        }
    }

    // Scoped vs wholesale invalidation under structural churn: one
    // touched vertex per shard per round, a walk wave between rounds.
    for scoped in [true, false] {
        let graph = chord_graph();
        let mut cfg = ServiceConfig {
            num_shards: 4,
            seed: config.seed,
            ..ServiceConfig::default()
        };
        cfg.engine.scoped_context_invalidation = scoped;
        let service = WalkService::build(&graph, cfg).expect("service builds");
        let starts: Vec<VertexId> = (0..NUM_VERTICES as VertexId).collect();
        let span = NUM_VERTICES as u32 / 4;
        let (_, elapsed) = timed(|| {
            for round in 0..CHURN_ROUNDS {
                service.wait(service.submit(spec(config), &starts).expect("submit"));
                let events: Vec<UpdateEvent> = (0..4)
                    .map(|shard| {
                        let src = shard * span + round;
                        UpdateEvent::Insert {
                            src,
                            dst: (src + 17 + round) % NUM_VERTICES as u32,
                            bias: Bias::from_int(1),
                        }
                    })
                    .collect();
                let receipt = service.ingest(&UpdateBatch::new(events));
                service.sync(receipt);
            }
        });
        let stats = service.shutdown();
        let fwd = stats.total_forwards();
        table.push_row(vec![
            if scoped {
                "scoped-inval"
            } else {
                "wholesale-inval"
            }
            .to_string(),
            "4".to_string(),
            stats.total_walks_completed().to_string(),
            format!(
                "{:.1}",
                stats.total_steps() as f64 / elapsed.as_secs_f64().max(1e-9) / 1e3
            ),
            fwd.to_string(),
            stats.total_context_bytes().to_string(),
            format!(
                "{:.1}",
                stats.total_context_bytes() as f64 / fwd.max(1) as f64
            ),
            format!("{:.3}", stats.handle_hit_rate()),
            "-".to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialized_rows_are_bit_identical_and_scoped_beats_wholesale() {
        let config = ExperimentConfig {
            walk_length: 8,
            ..ExperimentConfig::default()
        };
        let table = transport(&config);
        assert_eq!(table.rows.len(), 8, "3 shard pairs + 2 churn rows");
        for row in &table.rows {
            if row[0] == "serialized" {
                assert_eq!(row[8], "yes", "serialized must match in-process: {row:?}");
                assert!(
                    row[5].parse::<u64>().unwrap() > 0,
                    "frames shipped: {row:?}"
                );
            }
            if row[0] == "inprocess" {
                assert_eq!(row[5], "0", "no frames in-process: {row:?}");
            }
        }
        let hit = |mode: &str| -> f64 {
            table.rows.iter().find(|r| r[0] == mode).expect("churn row")[7]
                .parse()
                .unwrap()
        };
        assert!(
            hit("scoped-inval") > hit("wholesale-inval"),
            "scoped invalidation must keep caches warmer: {} vs {}",
            hit("scoped-inval"),
            hit("wholesale-inval")
        );
    }
}

//! Figures 12 and 16: update ingestion experiments.

use crate::common::{timed, ExperimentConfig, ResultTable};
use bingo_baselines::FlowWalkerBaseline;
use bingo_core::{BingoConfig, BingoEngine};
use bingo_graph::datasets::StandinDataset;
use bingo_graph::updates::UpdateKind;
use bingo_graph::Bias;
use bingo_sampling::rng::Pcg64;
use bingo_walks::{DynamicWalkSystem, IngestMode, TransitionSampler};
use rand::{Rng, SeedableRng};

/// Figure 12 — streaming vs batched ingestion throughput (updates per
/// second) for insertion / deletion / mixed workloads on every dataset.
pub fn fig12(config: &ExperimentConfig) -> ResultTable {
    let kinds = [
        ("Insertion", UpdateKind::InsertOnly),
        ("Deletion", UpdateKind::DeleteOnly),
        ("Mixed", UpdateKind::Mixed),
    ];
    let mut table = ResultTable::new(
        "Figure 12: streaming vs batched update throughput (updates/s)",
        &[
            "workload",
            "dataset",
            "streaming_ups",
            "batched_ups",
            "batched_speedup",
        ],
    );
    for (kind_name, kind) in kinds {
        for dataset in StandinDataset::all() {
            let (graph, batches) = config.prepare(dataset, kind);
            let total_updates: usize = batches.iter().map(|b| b.len()).sum();

            let mut streaming_engine = BingoEngine::build(&graph, BingoConfig::default()).unwrap();
            let (_, streaming_time) = timed(|| {
                for batch in &batches {
                    streaming_engine.ingest(batch, IngestMode::Streaming);
                }
            });
            let mut batched_engine = BingoEngine::build(&graph, BingoConfig::default()).unwrap();
            let (_, batched_time) = timed(|| {
                for batch in &batches {
                    batched_engine.ingest(batch, IngestMode::Batched);
                }
            });
            let streaming_ups = total_updates as f64 / streaming_time.as_secs_f64().max(1e-9);
            let batched_ups = total_updates as f64 / batched_time.as_secs_f64().max(1e-9);
            table.push_row(vec![
                kind_name.to_string(),
                dataset.spec().abbrev.to_string(),
                format!("{streaming_ups:.0}"),
                format!("{batched_ups:.0}"),
                format!("{:.2}", batched_ups / streaming_ups.max(1e-9)),
            ]);
        }
    }
    table
}

/// Figure 16 — piecewise breakdown: time to perform `n` insertions, `n`
/// deletions and `n` sampling operations in Bingo vs FlowWalker.
pub fn fig16(config: &ExperimentConfig) -> ResultTable {
    let n = (config.batch_size * config.rounds).max(1000);
    let mut table = ResultTable::new(
        format!("Figure 16: piecewise breakdown — {n} inserts / deletes / samples (s)"),
        &[
            "dataset",
            "bingo_insert_s",
            "bingo_delete_s",
            "bingo_sample_s",
            "flowwalker_update_s",
            "flowwalker_sample_s",
            "sampling_speedup",
        ],
    );
    for dataset in StandinDataset::all() {
        let mut rng = config.rng(dataset.spec().paper_vertices ^ 16);
        let graph = dataset.build(config.scale, &mut rng);
        let (_, insert_batch) = config.prepare(dataset, UpdateKind::InsertOnly);
        let (_, delete_batch) = config.prepare(dataset, UpdateKind::DeleteOnly);
        let insert_events: Vec<_> = insert_batch
            .iter()
            .flat_map(|b| b.events().iter().copied())
            .take(n)
            .collect();
        let delete_events: Vec<_> = delete_batch
            .iter()
            .flat_map(|b| b.events().iter().copied())
            .take(n)
            .collect();

        // Bingo: streaming insertions, deletions, then sampling.
        let mut bingo = BingoEngine::build(&graph, BingoConfig::default()).unwrap();
        let (_, bingo_insert) = timed(|| {
            for e in &insert_events {
                let _ = bingo.apply_event(e);
            }
        });
        let (_, bingo_delete) = timed(|| {
            for e in &delete_events {
                let _ = bingo.apply_event(e);
            }
        });
        let starts = sample_targets(&bingo, n, config.seed ^ 21);
        let mut srng = Pcg64::seed_from_u64(config.seed ^ 22);
        let (_, bingo_sample) = timed(|| {
            for &v in &starts {
                std::hint::black_box(bingo.sample_neighbor(v, &mut srng));
            }
        });

        // FlowWalker: graph mutation (its "update"), then O(d) sampling.
        let mut fw = FlowWalkerBaseline::build(&graph);
        let (_, fw_update) = timed(|| {
            for e in insert_events.iter().chain(delete_events.iter()) {
                let _ = fw.ingest(
                    &bingo_graph::UpdateBatch::new(vec![*e]),
                    IngestMode::Streaming,
                );
            }
        });
        let mut srng = Pcg64::seed_from_u64(config.seed ^ 22);
        let (_, fw_sample) = timed(|| {
            for &v in &starts {
                std::hint::black_box(fw.sample_neighbor(v, &mut srng));
            }
        });

        table.push_row(vec![
            dataset.spec().abbrev.to_string(),
            format!("{:.4}", bingo_insert.as_secs_f64()),
            format!("{:.4}", bingo_delete.as_secs_f64()),
            format!("{:.4}", bingo_sample.as_secs_f64()),
            format!("{:.4}", fw_update.as_secs_f64()),
            format!("{:.4}", fw_sample.as_secs_f64()),
            format!(
                "{:.2}",
                fw_sample.as_secs_f64() / bingo_sample.as_secs_f64().max(1e-9)
            ),
        ]);
    }
    table
}

/// Pick `n` sampling targets biased toward high-degree vertices (walkers
/// overwhelmingly sample from well-connected vertices).
fn sample_targets(engine: &BingoEngine, n: usize, seed: u64) -> Vec<bingo_graph::VertexId> {
    let mut rng = Pcg64::seed_from_u64(seed);
    let num_vertices = TransitionSampler::num_vertices(engine) as u32;
    let mut targets = Vec::with_capacity(n);
    let mut candidates = 0usize;
    while targets.len() < n && candidates < n * 20 {
        candidates += 1;
        let v = rng.gen_range(0..num_vertices);
        if engine.degree(v) > 0 {
            targets.push(v);
        }
    }
    // Pad with vertex 0 if the graph is so sparse we ran out of attempts.
    while targets.len() < n {
        targets.push(0);
    }
    targets
}

/// Measure raw streaming ingestion rate (updates per second) for one
/// dataset; used by the README quickstart numbers and tests.
pub fn streaming_ingestion_rate(config: &ExperimentConfig, dataset: StandinDataset) -> f64 {
    let (graph, batches) = config.prepare(dataset, UpdateKind::Mixed);
    let mut engine = BingoEngine::build(&graph, BingoConfig::default()).unwrap();
    let total: usize = batches.iter().map(|b| b.len()).sum();
    let (_, elapsed) = timed(|| {
        for batch in &batches {
            engine.apply_streaming(batch);
        }
    });
    total as f64 / elapsed.as_secs_f64().max(1e-9)
}

#[allow(dead_code)]
fn keep_bias_import_alive() -> Bias {
    Bias::from_int(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::tables::smoke_config;

    #[test]
    fn fig12_batched_is_not_slower_than_streaming_on_average() {
        let mut config = smoke_config();
        config.batch_size = 400;
        config.scale = 8000;
        let t = fig12(&config);
        assert_eq!(t.rows.len(), 15);
        let mean_speedup: f64 = t
            .rows
            .iter()
            .map(|r| r[4].parse::<f64>().unwrap())
            .sum::<f64>()
            / t.rows.len() as f64;
        assert!(
            mean_speedup > 0.8,
            "batched ingestion should not be dramatically slower on average: {mean_speedup}"
        );
    }

    #[test]
    fn fig16_reports_all_datasets_with_positive_times() {
        let mut config = smoke_config();
        config.scale = 16_000;
        config.batch_size = 200;
        let t = fig16(&config);
        assert_eq!(t.rows.len(), 5);
        for row in &t.rows {
            for cell in &row[1..6] {
                assert!(cell.parse::<f64>().unwrap() >= 0.0);
            }
        }
    }

    #[test]
    fn streaming_rate_is_positive() {
        let config = smoke_config();
        assert!(streaming_ingestion_rate(&config, StandinDataset::Amazon) > 0.0);
    }
}

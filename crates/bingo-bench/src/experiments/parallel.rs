//! Library-level parallelism: the `rayon` shim's thread team vs a pinned
//! single thread, on the two hot passes the paper's numbers depend on —
//! engine builds (`BingoEngine::build`) and full walk passes
//! (`WalkStore::generate` with node2vec).
//!
//! This experiment exists to keep the shim honest on two axes at once:
//!
//! * **Speedup** — on a multi-core runner the default team must beat
//!   `BINGO_THREADS=1` by a wide margin (CI greps the JSON row for
//!   `threads > 1` and the reported speedup; the acceptance bar is ≥2× on
//!   ≥4 cores). On a single-core machine the speedup hovers around 1.0 —
//!   the `threads` column says which regime the row was measured in.
//! * **Determinism** — the 1-thread and N-thread runs must produce
//!   *bit-identical* engines and walk corpora (`identical` column):
//!   per-walker seeds are index-derived and the shim's chunk boundaries
//!   are thread-count-independent, so parallelism must never show through
//!   in the output.
//!
//! Three extra rows keep the *persistent* pool honest (the retired design
//! spawned a scoped thread team per call, whose spawn cost dominated
//! sub-millisecond passes):
//!
//! * `warm_vs_cold_pool` — mean wall clock of a sub-millisecond chunked
//!   pass, per-call thread spawning (`seq_s`, the retired design,
//!   emulated with `std::thread::scope`) vs the warm persistent pool
//!   (`par_s`); `speedup` is the machine-readable spawn-cost win.
//! * `pool_steals` / `pool_park_ratio` — runtime profile over the whole
//!   experiment (value in the `speedup` column, `-` elsewhere): work
//!   items executed by a non-posting worker, and the share of worker
//!   wall time spent *parked* on the injector condvar — parked time is
//!   free (no spin), which is what makes the warm pool cheap to keep.

use crate::common::{fmt_secs, timed, ExperimentConfig, ResultTable};
use bingo_core::{BingoConfig, BingoEngine};
use bingo_graph::datasets::StandinDataset;
use bingo_graph::VertexId;
use bingo_walks::{Node2VecConfig, WalkSpec, WalkStore};
use std::time::Duration;

/// Best-of-`rounds` wall clock for `f` under a pinned thread count.
fn best_of<T>(rounds: usize, threads: Option<usize>, f: impl Fn() -> T) -> (T, Duration) {
    let mut best: Option<(T, Duration)> = None;
    for _ in 0..rounds.max(1) {
        let (out, took) = match threads {
            Some(n) => rayon::with_threads(n, || timed(&f)),
            None => timed(&f),
        };
        if best.as_ref().map(|(_, b)| took < *b).unwrap_or(true) {
            best = Some((out, took));
        }
    }
    best.expect("at least one round")
}

fn row(phase: &str, threads: usize, seq: Duration, par: Duration, identical: bool) -> Vec<String> {
    vec![
        phase.to_string(),
        threads.to_string(),
        fmt_secs(seq),
        fmt_secs(par),
        format!("{:.2}", seq.as_secs_f64() / par.as_secs_f64().max(1e-9)),
        if identical { "yes" } else { "NO" }.to_string(),
    ]
}

/// Engine-build and walk-pass wall clock, 1 thread vs the default team.
pub fn parallel(config: &ExperimentConfig) -> ResultTable {
    let mut table = ResultTable::new(
        "Parallel runtime: shim thread team vs BINGO_THREADS=1 (best of rounds)",
        &["phase", "threads", "seq_s", "par_s", "speedup", "identical"],
    );
    // Arm the pool's nanosecond timers for the whole experiment so the
    // closing profile rows (steals, park ratio) have real data.
    rayon::set_pool_profiling(true);
    rayon::reset_pool_profile();
    let threads = rayon::current_num_threads();
    let mut rng = config.rng(0x9A11E1);
    let graph = StandinDataset::LiveJournal.build(config.scale, &mut rng);

    // Engine build: per-vertex sampling-space construction.
    let (seq_engine, seq_build) = best_of(config.rounds, Some(1), || {
        BingoEngine::build(&graph, BingoConfig::default()).expect("build")
    });
    let (par_engine, par_build) = best_of(config.rounds, None, || {
        BingoEngine::build(&graph, BingoConfig::default()).expect("build")
    });
    let engines_identical = (0..graph.num_vertices() as VertexId)
        .all(|v| seq_engine.degree(v) == par_engine.degree(v))
        && seq_engine.num_edges() == par_engine.num_edges()
        && seq_engine.memory_report() == par_engine.memory_report();
    table.push_row(row(
        "engine_build",
        threads,
        seq_build,
        par_build,
        engines_identical,
    ));

    // Walk pass: one node2vec walker per vertex over the parallel engine.
    let spec = WalkSpec::Node2Vec(Node2VecConfig {
        walk_length: config.walk_length,
        p: 0.5,
        q: 2.0,
    });
    let (seq_store, seq_walk) = best_of(config.rounds, Some(1), || {
        WalkStore::generate(&par_engine, &spec, config.seed)
    });
    let (par_store, par_walk) = best_of(config.rounds, None, || {
        WalkStore::generate(&par_engine, &spec, config.seed)
    });
    let walks_identical = seq_store.walks() == par_store.walks();
    table.push_row(row(
        "walk_pass",
        threads,
        seq_walk,
        par_walk,
        walks_identical,
    ));

    // Warm persistent pool vs per-call thread spawning on a pass short
    // enough that spawn cost is the bill: the retired scoped-team design
    // paid `team` thread spawns per call, the parked pool pays a mutex
    // push and a notify. The team is pinned to at least 2 so the pool is
    // genuinely exercised even on a single-core runner.
    let team = threads.max(2);
    let items: Vec<u64> = (0..16_384u64).collect();
    let mix = |x: u64| {
        let mut z = x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z ^= z >> 31;
        z.wrapping_mul(0xBF58_476D_1CE4_E5B9)
    };
    let passes = (config.rounds * 16).max(16);
    let expected: u64 = items.iter().map(|&x| mix(x)).fold(0, u64::wrapping_add);
    let (warm_ok, warm_total) = timed(|| {
        use rayon::prelude::*;
        rayon::with_threads(team, || {
            (0..passes).all(|_| {
                let sum = items
                    .par_iter()
                    .map(|&x| mix(x))
                    .reduce(|| 0u64, u64::wrapping_add);
                sum == expected
            })
        })
    });
    let (cold_ok, cold_total) = timed(|| {
        (0..passes).all(|_| {
            // The retired design: spawn a fresh scoped team, split the
            // range contiguously, join — every pass pays the spawns.
            let share = items.len().div_ceil(team);
            let sum = std::thread::scope(|scope| {
                items
                    .chunks(share)
                    .map(|chunk| {
                        scope
                            .spawn(move || chunk.iter().map(|&x| mix(x)).fold(0, u64::wrapping_add))
                    })
                    .collect::<Vec<_>>()
                    .into_iter()
                    .map(|h| h.join().expect("scoped worker"))
                    .fold(0, u64::wrapping_add)
            });
            sum == expected
        })
    });
    let cold_pass = cold_total / passes as u32;
    let warm_pass = warm_total / passes as u32;
    table.push_row(vec![
        "warm_vs_cold_pool".to_string(),
        team.to_string(),
        // Sub-millisecond per-pass times need more than fmt_secs's 3
        // decimals to be legible.
        format!("{:.6}", cold_pass.as_secs_f64()),
        format!("{:.6}", warm_pass.as_secs_f64()),
        format!(
            "{:.2}",
            cold_pass.as_secs_f64() / warm_pass.as_secs_f64().max(1e-9)
        ),
        if warm_ok && cold_ok { "yes" } else { "NO" }.to_string(),
    ]);

    // Pool profile over everything this experiment ran (profiling was
    // armed on entry): steal traffic proves helpers participate; the park
    // ratio says the warm pool waits parked, not spinning.
    let profile = rayon::pool_profile();
    let worker_wall = profile.worker_busy_ns + profile.worker_idle_ns + profile.park_ns;
    let park_ratio = profile.park_ns as f64 / worker_wall.max(1) as f64;
    let value_row = |phase: &str, value: String| {
        vec![
            phase.to_string(),
            team.to_string(),
            "-".to_string(),
            "-".to_string(),
            value,
            "-".to_string(),
        ]
    };
    table.push_row(value_row("pool_steals", profile.steals.to_string()));
    table.push_row(value_row("pool_park_ratio", format!("{park_ratio:.3}")));
    rayon::set_pool_profiling(false);

    table
}

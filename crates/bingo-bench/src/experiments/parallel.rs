//! Library-level parallelism: the `rayon` shim's thread team vs a pinned
//! single thread, on the two hot passes the paper's numbers depend on —
//! engine builds (`BingoEngine::build`) and full walk passes
//! (`WalkStore::generate` with node2vec).
//!
//! This experiment exists to keep the shim honest on two axes at once:
//!
//! * **Speedup** — on a multi-core runner the default team must beat
//!   `BINGO_THREADS=1` by a wide margin (CI greps the JSON row for
//!   `threads > 1` and the reported speedup; the acceptance bar is ≥2× on
//!   ≥4 cores). On a single-core machine the speedup hovers around 1.0 —
//!   the `threads` column says which regime the row was measured in.
//! * **Determinism** — the 1-thread and N-thread runs must produce
//!   *bit-identical* engines and walk corpora (`identical` column):
//!   per-walker seeds are index-derived and the shim's chunk boundaries
//!   are thread-count-independent, so parallelism must never show through
//!   in the output.

use crate::common::{fmt_secs, timed, ExperimentConfig, ResultTable};
use bingo_core::{BingoConfig, BingoEngine};
use bingo_graph::datasets::StandinDataset;
use bingo_graph::VertexId;
use bingo_walks::{Node2VecConfig, WalkSpec, WalkStore};
use std::time::Duration;

/// Best-of-`rounds` wall clock for `f` under a pinned thread count.
fn best_of<T>(rounds: usize, threads: Option<usize>, f: impl Fn() -> T) -> (T, Duration) {
    let mut best: Option<(T, Duration)> = None;
    for _ in 0..rounds.max(1) {
        let (out, took) = match threads {
            Some(n) => rayon::with_threads(n, || timed(&f)),
            None => timed(&f),
        };
        if best.as_ref().map(|(_, b)| took < *b).unwrap_or(true) {
            best = Some((out, took));
        }
    }
    best.expect("at least one round")
}

fn row(phase: &str, threads: usize, seq: Duration, par: Duration, identical: bool) -> Vec<String> {
    vec![
        phase.to_string(),
        threads.to_string(),
        fmt_secs(seq),
        fmt_secs(par),
        format!("{:.2}", seq.as_secs_f64() / par.as_secs_f64().max(1e-9)),
        if identical { "yes" } else { "NO" }.to_string(),
    ]
}

/// Engine-build and walk-pass wall clock, 1 thread vs the default team.
pub fn parallel(config: &ExperimentConfig) -> ResultTable {
    let mut table = ResultTable::new(
        "Parallel runtime: shim thread team vs BINGO_THREADS=1 (best of rounds)",
        &["phase", "threads", "seq_s", "par_s", "speedup", "identical"],
    );
    let threads = rayon::current_num_threads();
    let mut rng = config.rng(0x9A11E1);
    let graph = StandinDataset::LiveJournal.build(config.scale, &mut rng);

    // Engine build: per-vertex sampling-space construction.
    let (seq_engine, seq_build) = best_of(config.rounds, Some(1), || {
        BingoEngine::build(&graph, BingoConfig::default()).expect("build")
    });
    let (par_engine, par_build) = best_of(config.rounds, None, || {
        BingoEngine::build(&graph, BingoConfig::default()).expect("build")
    });
    let engines_identical = (0..graph.num_vertices() as VertexId)
        .all(|v| seq_engine.degree(v) == par_engine.degree(v))
        && seq_engine.num_edges() == par_engine.num_edges()
        && seq_engine.memory_report() == par_engine.memory_report();
    table.push_row(row(
        "engine_build",
        threads,
        seq_build,
        par_build,
        engines_identical,
    ));

    // Walk pass: one node2vec walker per vertex over the parallel engine.
    let spec = WalkSpec::Node2Vec(Node2VecConfig {
        walk_length: config.walk_length,
        p: 0.5,
        q: 2.0,
    });
    let (seq_store, seq_walk) = best_of(config.rounds, Some(1), || {
        WalkStore::generate(&par_engine, &spec, config.seed)
    });
    let (par_store, par_walk) = best_of(config.rounds, None, || {
        WalkStore::generate(&par_engine, &spec, config.seed)
    });
    let walks_identical = seq_store.walks() == par_store.walks();
    table.push_row(row(
        "walk_pass",
        threads,
        seq_walk,
        par_walk,
        walks_identical,
    ));

    table
}

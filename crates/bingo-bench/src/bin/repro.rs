//! `repro` — regenerate the tables and figures of the Bingo paper.
//!
//! ```text
//! repro all                       # every experiment at laptop scale
//! repro table3                    # one experiment
//! repro table3 --scale 500 --batch 10000 --rounds 10 --walk-length 80
//! repro list                      # list available experiments
//! ```
//!
//! Results are printed to stdout and written as CSV files under `results/`.

use bingo_bench::common::ExperimentConfig;
use bingo_bench::experiments;
use bingo_bench::ResultTable;

struct Experiment {
    name: &'static str,
    description: &'static str,
    run: fn(&ExperimentConfig) -> ResultTable,
}

const EXPERIMENTS: &[Experiment] = &[
    Experiment {
        name: "table1",
        description: "Complexity comparison: Bingo vs Alias/ITS/Rejection (per-op cost vs degree)",
        run: experiments::table1,
    },
    Experiment {
        name: "table2",
        description: "Dataset statistics: paper graphs vs generated stand-ins",
        run: experiments::table2,
    },
    Experiment {
        name: "table3",
        description: "Bingo vs KnightKing/gSampler/FlowWalker: runtime and memory",
        run: experiments::table3,
    },
    Experiment {
        name: "table4",
        description: "Group-type conversion ratios (LJ stand-in, mixed updates)",
        run: experiments::table4,
    },
    Experiment {
        name: "fig9",
        description: "Group element ratio per radix group for three bias distributions",
        run: experiments::fig9,
    },
    Experiment {
        name: "fig11",
        description: "Adaptive group representation: memory savings BS vs GA",
        run: experiments::fig11,
    },
    Experiment {
        name: "fig12",
        description: "Streaming vs batched update throughput",
        run: experiments::fig12,
    },
    Experiment {
        name: "fig13",
        description: "Time breakdown BS vs GA",
        run: experiments::fig13,
    },
    Experiment {
        name: "fig14",
        description: "Integer vs floating-point bias: time and memory",
        run: experiments::fig14,
    },
    Experiment {
        name: "fig15a",
        description: "Runtime vs update batch size (gSampler vs Bingo)",
        run: experiments::fig15a,
    },
    Experiment {
        name: "fig15b",
        description: "Runtime vs walk length (gSampler vs Bingo)",
        run: experiments::fig15b,
    },
    Experiment {
        name: "fig15c",
        description: "Runtime and memory vs bias distribution",
        run: experiments::fig15c,
    },
    Experiment {
        name: "fig16",
        description:
            "Piecewise breakdown: insertions, deletions and sampling (Bingo vs FlowWalker)",
        run: experiments::fig16,
    },
    Experiment {
        name: "service",
        description: "Sharded walk service: throughput under streaming updates vs shard count",
        run: experiments::service,
    },
    Experiment {
        name: "service_node2vec",
        description: "Sharded node2vec vs single engine: second-order chi-square equivalence",
        run: experiments::service_node2vec,
    },
    Experiment {
        name: "gateway",
        description: "Multi-tenant gateway: weighted fairness and AIMD admission sweep",
        run: experiments::gateway,
    },
    Experiment {
        name: "obs",
        description:
            "Observability plane: exposition endpoint round-trip latency, flight-ring accounting",
        run: experiments::obs,
    },
    Experiment {
        name: "parallel",
        description:
            "Rayon-shim thread team: engine-build/walk-pass speedup vs 1 thread, determinism",
        run: experiments::parallel,
    },
    Experiment {
        name: "transport",
        description:
            "Serialized wire round-trip vs in-process forwarding; scoped vs wholesale invalidation",
        run: experiments::transport,
    },
];

fn print_usage() {
    eprintln!("usage: repro <experiment|all|list> [--scale N] [--batch N] [--rounds N] [--walk-length N] [--seed N] [--paper-scale]");
    eprintln!("experiments:");
    for e in EXPERIMENTS {
        eprintln!("  {:<8} {}", e.name, e.description);
    }
}

fn parse_config(args: &[String]) -> Result<ExperimentConfig, String> {
    let mut config = ExperimentConfig::default();
    let mut i = 0;
    while i < args.len() {
        let key = args[i].as_str();
        if key == "--paper-scale" {
            config = ExperimentConfig::paper_scale();
            i += 1;
            continue;
        }
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("missing value for {key}"))?
            .parse::<u64>()
            .map_err(|_| format!("invalid value for {key}"))?;
        match key {
            "--scale" => config.scale = value.max(1),
            "--batch" => config.batch_size = value as usize,
            "--rounds" => config.rounds = value as usize,
            "--walk-length" => config.walk_length = value as usize,
            "--seed" => config.seed = value,
            other => return Err(format!("unknown flag {other}")),
        }
        i += 2;
    }
    Ok(config)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(target) = args.first().cloned() else {
        print_usage();
        std::process::exit(2);
    };
    if target == "list" {
        print_usage();
        return;
    }
    let config = match parse_config(&args[1..]) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            print_usage();
            std::process::exit(2);
        }
    };
    println!(
        "configuration: scale=1/{} batch={} rounds={} walk_length={} seed={:#x}",
        config.scale, config.batch_size, config.rounds, config.walk_length, config.seed
    );
    println!("(paper parameters: scale=1/1 batch=100000 rounds=10 walk_length=80 — pass --paper-scale on a large machine)");

    let selected: Vec<&Experiment> = if target == "all" {
        EXPERIMENTS.iter().collect()
    } else {
        match EXPERIMENTS.iter().find(|e| e.name == target) {
            Some(e) => vec![e],
            None => {
                eprintln!("unknown experiment '{target}'");
                print_usage();
                std::process::exit(2);
            }
        }
    };

    for experiment in selected {
        eprintln!("\nrunning {} — {}", experiment.name, experiment.description);
        let start = std::time::Instant::now();
        let table = (experiment.run)(&config);
        let elapsed = start.elapsed();
        table.print();
        match table.write_csv(experiment.name) {
            Ok(path) => println!("written {}", path.display()),
            Err(e) => eprintln!("could not write CSV for {}: {e}", experiment.name),
        }
        // Machine-readable one-liner for trajectory capture.
        println!("{}", table.json_summary(experiment.name, elapsed));
        eprintln!(
            "{} finished in {:.1}s",
            experiment.name,
            elapsed.as_secs_f64()
        );
    }
}

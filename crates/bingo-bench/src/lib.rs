//! # bingo-bench
//!
//! Benchmark harness that regenerates every table and figure of the Bingo
//! paper's evaluation (§6) on scaled-down stand-in datasets.
//!
//! The `repro` binary drives the experiments:
//!
//! ```text
//! cargo run --release -p bingo-bench --bin repro -- all
//! cargo run --release -p bingo-bench --bin repro -- table3 --scale 2000 --batch 2000
//! ```
//!
//! Each experiment prints a human-readable table to stdout and writes a CSV
//! file under `results/`. Absolute numbers differ from the paper (CPU
//! stand-ins instead of A100 GPUs and billion-edge graphs); the quantities
//! to compare are the *relative* ones: who wins, by roughly what factor, and
//! how the trends move with the swept parameter.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod common;
pub mod experiments;

pub use common::{ExperimentConfig, ResultTable};

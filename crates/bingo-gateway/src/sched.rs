//! Deficit-round-robin scheduling of queued walk chunks across tenants.
//!
//! The scheduler is deliberately pure bookkeeping — no threads, no clocks,
//! no service handles — so its fairness properties are unit-testable in
//! isolation. The dispatcher thread (see [`crate::Gateway`]) owns one
//! [`DrrScheduler`] and asks it for the next dispatchable chunk whenever
//! the in-flight window has room.
//!
//! ## The algorithm
//!
//! Classic deficit round robin over per-tenant FIFO queues, with the
//! *walker* (start vertex) as the unit of cost: every time the round-robin
//! pointer visits a backlogged tenant whose accumulated deficit cannot pay
//! for its head chunk, the tenant earns `quantum × weight` additional
//! deficit; chunks are dispatched while the deficit covers their cost.
//! Over any interval in which a set of tenants stays backlogged, each
//! receives dispatch bandwidth proportional to its weight regardless of
//! how the others shape their submissions — the property the fairness
//! example and tests measure end to end.

use bingo_graph::VertexId;
use bingo_walks::{SharedWalkModel, TenantId};
use std::collections::{HashMap, VecDeque};
use std::time::Instant;

/// One shard-aligned slice of a gateway submission: the unit the
/// dispatcher admits into the walk service. Keeping chunks shard-aligned
/// means (a) fairness granularity is per-chunk, not per-request — a giant
/// submission cannot monopolize a dispatch turn — and (b) a
/// `Saturated` rejection names exactly the inbox that is full, so other
/// shards keep receiving work.
#[derive(Debug, Clone)]
pub struct Chunk {
    /// Tenant the chunk is billed to.
    pub tenant: TenantId,
    /// Gateway submission this chunk belongs to.
    pub submission: u64,
    /// Walk model to run (shared with every sibling chunk).
    pub model: SharedWalkModel,
    /// Start vertices, all owned by [`Chunk::shard`].
    pub starts: Vec<VertexId>,
    /// For each start, its index in the original submission's start list
    /// (parallel to `starts`) — results are reassembled through this map.
    pub indices: Vec<u32>,
    /// The shard owning every start vertex.
    pub shard: usize,
    /// Per-submission seed override forwarded to the service.
    pub seed: Option<u64>,
    /// When the chunk entered its tenant queue (queue-wait measurement).
    pub enqueued_at: Instant,
}

impl Chunk {
    /// Scheduling cost of the chunk: the number of walkers it admits.
    pub fn cost(&self) -> usize {
        self.starts.len()
    }
}

/// Split a submission's start list into shard-aligned chunks of at most
/// `max_chunk` walkers, preserving submission order within each shard.
/// Returns `(shard, Vec<(original_index, vertex)>)` groups.
pub fn shard_aligned_chunks(
    starts: &[VertexId],
    owner: impl Fn(VertexId) -> usize,
    max_chunk: usize,
) -> Vec<(usize, Vec<(u32, VertexId)>)> {
    let max_chunk = max_chunk.max(1);
    let mut open: HashMap<usize, Vec<(u32, VertexId)>> = HashMap::new();
    let mut sealed = Vec::new();
    for (i, &v) in starts.iter().enumerate() {
        let shard = owner(v);
        let group = open.entry(shard).or_default();
        group.push((i as u32, v));
        if group.len() >= max_chunk {
            sealed.push((shard, std::mem::take(group)));
        }
    }
    let mut rest: Vec<(usize, Vec<(u32, VertexId)>)> =
        open.into_iter().filter(|(_, g)| !g.is_empty()).collect();
    // Deterministic tail order (HashMap iteration is not).
    rest.sort_by_key(|(shard, _)| *shard);
    sealed.extend(rest);
    sealed
}

struct TenantQueue {
    weight: u32,
    deficit: usize,
    queue: VecDeque<Chunk>,
    queued_walkers: usize,
    /// Whether the tenant's current ring visit has already earned its
    /// quantum. DRR earns exactly once per visit — earning on every
    /// scheduling attempt would let whichever tenant sits at the front
    /// accumulate deficit indefinitely and starve the rest.
    visit_earned: bool,
}

/// The deficit-round-robin scheduler: per-tenant FIFO chunk queues plus
/// the active ring the dispatcher cycles through.
pub struct DrrScheduler {
    /// Deficit earned per visit per weight unit, in walkers.
    quantum: usize,
    tenants: HashMap<TenantId, TenantQueue>,
    /// Round-robin ring of tenants with at least one queued chunk.
    active: VecDeque<TenantId>,
}

impl DrrScheduler {
    /// A scheduler granting `quantum` walkers of deficit per weight unit
    /// each time the round-robin pointer passes a backlogged tenant.
    pub fn new(quantum: usize) -> Self {
        DrrScheduler {
            quantum: quantum.max(1),
            tenants: HashMap::new(),
            active: VecDeque::new(),
        }
    }

    /// Set (or update) a tenant's weight. Registers the tenant if new.
    pub fn set_weight(&mut self, tenant: &TenantId, weight: u32) {
        let entry = self
            .tenants
            .entry(tenant.clone())
            .or_insert_with(|| TenantQueue {
                weight: 1,
                deficit: 0,
                queue: VecDeque::new(),
                queued_walkers: 0,
                visit_earned: false,
            });
        entry.weight = weight.max(1);
    }

    /// A tenant's configured weight (1 when unknown).
    pub fn weight(&self, tenant: &TenantId) -> u32 {
        self.tenants.get(tenant).map_or(1, |t| t.weight)
    }

    /// Walkers currently queued for `tenant`.
    pub fn queued_walkers(&self, tenant: &TenantId) -> usize {
        self.tenants.get(tenant).map_or(0, |t| t.queued_walkers)
    }

    /// Walkers queued across all tenants.
    pub fn total_queued(&self) -> usize {
        self.tenants.values().map(|t| t.queued_walkers).sum()
    }

    /// Whether any chunk is queued.
    pub fn is_empty(&self) -> bool {
        self.active.is_empty()
    }

    /// Enqueue time of the oldest chunk still queued across all tenants
    /// (`None` when nothing is queued). The stall watchdog compares this
    /// against now to detect a gateway whose queues sit still while the
    /// window never reopens.
    pub fn oldest_enqueued_at(&self) -> Option<Instant> {
        // `.min()` is an order-insensitive fold over the unordered map.
        self.tenants
            .values()
            .filter_map(|t| t.queue.front())
            .map(|c| c.enqueued_at)
            .min()
    }

    /// Append a chunk to its tenant's queue.
    pub fn enqueue(&mut self, chunk: Chunk) {
        let tenant = chunk.tenant.clone();
        self.set_weight(&tenant, self.weight(&tenant)); // ensure registered
        let entry = self.tenants.get_mut(&tenant).expect("just registered");
        let was_empty = entry.queue.is_empty();
        entry.queued_walkers += chunk.cost();
        entry.queue.push_back(chunk);
        if was_empty {
            self.active.push_back(tenant);
        }
    }

    /// Put a chunk the service refused back at the *front* of its tenant's
    /// queue, refunding the deficit its dispatch consumed — the rejection
    /// must not count against the tenant's fair share. The refund also
    /// marks the visit's quantum as earned: the tenant can re-dispatch the
    /// bounced chunk from the refund without collecting a second quantum.
    pub fn requeue_front(&mut self, chunk: Chunk) {
        let tenant = chunk.tenant.clone();
        let entry = self.tenants.get_mut(&tenant).expect("tenant registered");
        let was_empty = entry.queue.is_empty();
        entry.queued_walkers += chunk.cost();
        entry.deficit += chunk.cost();
        entry.visit_earned = true;
        entry.queue.push_front(chunk);
        if was_empty {
            self.active.push_front(tenant);
        }
    }

    /// The next chunk to dispatch under DRR, costing at most `budget`
    /// walkers (the in-flight window's remaining room). Returns `None`
    /// when nothing is queued or no backlogged tenant's head chunk fits
    /// the budget.
    pub fn next(&mut self, budget: usize) -> Option<Chunk> {
        if budget == 0 || self.active.is_empty() {
            return None;
        }
        // Tenants whose affordable head chunk exceeds the remaining budget
        // are *paused* (they keep ring position, deficit, and the earned
        // flag); once every active tenant has been paused, nothing is
        // dispatchable this call.
        let mut blocked = 0usize;
        while blocked < self.active.len() {
            let tenant = self.active.front().expect("ring non-empty").clone();
            let entry = self.tenants.get_mut(&tenant).expect("active ⊆ tenants");
            let Some(head_cost) = entry.queue.front().map(Chunk::cost) else {
                // Queue drained (defensive; dequeues keep the ring in sync).
                entry.deficit = 0;
                entry.visit_earned = false;
                self.active.pop_front();
                continue;
            };
            // A ring visit earns its quantum exactly once — on arrival at
            // the front, not on every scheduling attempt (per-attempt
            // earning would let the front tenant accrue without bound and
            // starve the ring).
            if !entry.visit_earned {
                entry.visit_earned = true;
                entry.deficit += self.quantum * entry.weight as usize;
            }
            if entry.deficit < head_cost {
                // This visit cannot afford the head: pass the turn. The
                // deficit carries over, so a chunk larger than one quantum
                // is eventually affordable — no starvation.
                entry.visit_earned = false;
                self.active.rotate_left(1);
                blocked = 0;
                continue;
            }
            if head_cost > budget {
                // Affordable but window-blocked: pause the visit without
                // ending it (no double quantum when the window reopens).
                self.active.rotate_left(1);
                blocked += 1;
                continue;
            }
            let chunk = entry.queue.pop_front().expect("head exists");
            entry.deficit -= head_cost;
            entry.queued_walkers -= head_cost;
            if entry.queue.is_empty() {
                // An idle tenant must not hoard deficit for a later burst.
                entry.deficit = 0;
                entry.visit_earned = false;
                self.active.pop_front();
            } else if entry.deficit < entry.queue.front().map_or(0, Chunk::cost) {
                // Deficit spent below the next head: the visit ends.
                entry.visit_earned = false;
                self.active.rotate_left(1);
            }
            return Some(chunk);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bingo_walks::{DeepWalkConfig, WalkSpec};

    fn chunk(tenant: &str, submission: u64, walkers: usize) -> Chunk {
        Chunk {
            tenant: TenantId::new(tenant),
            submission,
            model: WalkSpec::DeepWalk(DeepWalkConfig { walk_length: 4 }).to_model(),
            starts: vec![0; walkers],
            indices: (0..walkers as u32).collect(),
            shard: 0,
            seed: None,
            enqueued_at: Instant::now(),
        }
    }

    /// Drain the whole scheduler, returning walkers dispatched per tenant.
    fn drain_shares(sched: &mut DrrScheduler, budget: usize) -> HashMap<String, usize> {
        let mut shares: HashMap<String, usize> = HashMap::new();
        while let Some(c) = sched.next(budget) {
            *shares.entry(c.tenant.as_str().to_string()).or_default() += c.cost();
        }
        shares
    }

    #[test]
    fn full_drain_serves_every_queued_walker() {
        let mut sched = DrrScheduler::new(8);
        sched.set_weight(&TenantId::new("a"), 3);
        for i in 0..40 {
            sched.enqueue(chunk("a", i, 8));
            sched.enqueue(chunk("b", 100 + i, 8));
        }
        let shares = drain_shares(&mut sched, usize::MAX);
        // Weights shape the *order*, not the total: a full drain serves
        // everything, and the scheduler comes back empty.
        assert_eq!(shares["a"], 320);
        assert_eq!(shares["b"], 320);
        assert!(sched.is_empty());
        assert_eq!(sched.total_queued(), 0);
    }

    #[test]
    fn weighted_tenants_drain_proportionally() {
        // Both tenants stay backlogged for most of the drain; dispatched
        // walkers must track the 3:1 weights. Measure over a truncated
        // prefix so neither queue empties inside the window.
        let mut sched = DrrScheduler::new(8);
        sched.set_weight(&TenantId::new("heavy"), 3);
        sched.set_weight(&TenantId::new("light"), 1);
        for i in 0..120 {
            sched.enqueue(chunk("heavy", i, 8));
            sched.enqueue(chunk("light", 1000 + i, 8));
        }
        let mut heavy = 0usize;
        let mut light = 0usize;
        // 400 walkers of dispatch << 960 queued per tenant: both backlogged.
        while heavy + light < 400 {
            let c = sched.next(usize::MAX).expect("both tenants backlogged");
            match c.tenant.as_str() {
                "heavy" => heavy += c.cost(),
                _ => light += c.cost(),
            }
        }
        let ratio = heavy as f64 / light as f64;
        assert!(
            (ratio - 3.0).abs() < 0.35,
            "heavy/light dispatch ratio {ratio:.2}, want ~3"
        );
    }

    #[test]
    fn uneven_chunk_sizes_do_not_break_fairness() {
        // Tenant "big" queues few large chunks, "small" many tiny ones;
        // per-walker bandwidth must still follow the (equal) weights.
        let mut sched = DrrScheduler::new(4);
        for i in 0..60 {
            sched.enqueue(chunk("big", i, 20));
        }
        for i in 0..300 {
            sched.enqueue(chunk("small", 1000 + i, 4));
        }
        let mut big = 0usize;
        let mut small = 0usize;
        while big + small < 600 {
            let c = sched.next(usize::MAX).expect("backlogged");
            match c.tenant.as_str() {
                "big" => big += c.cost(),
                _ => small += c.cost(),
            }
        }
        let ratio = big as f64 / small as f64;
        assert!(
            (0.7..1.4).contains(&ratio),
            "equal weights, ratio {ratio:.2}"
        );
    }

    #[test]
    fn budget_limits_and_skips_oversized_heads() {
        let mut sched = DrrScheduler::new(16);
        sched.enqueue(chunk("wide", 0, 12));
        sched.enqueue(chunk("narrow", 1, 2));
        // Budget 4: wide's 12-walker head does not fit, narrow's does.
        let c = sched.next(4).expect("narrow chunk fits");
        assert_eq!(c.tenant.as_str(), "narrow");
        assert!(sched.next(4).is_none(), "remaining head exceeds budget");
        assert!(sched.next(0).is_none(), "zero budget dispatches nothing");
        let c = sched.next(12).expect("wide fits a larger window");
        assert_eq!(c.tenant.as_str(), "wide");
        assert!(sched.is_empty());
    }

    #[test]
    fn heads_larger_than_one_quantum_are_not_starved() {
        // quantum 2, weight 1, head cost 10: the tenant needs 5 visits to
        // afford its head but must eventually get it.
        let mut sched = DrrScheduler::new(2);
        sched.enqueue(chunk("slow", 0, 10));
        sched.enqueue(chunk("other", 1, 2));
        sched.enqueue(chunk("other", 2, 2));
        let mut got_slow = false;
        for _ in 0..32 {
            match sched.next(usize::MAX) {
                Some(c) if c.tenant.as_str() == "slow" => {
                    got_slow = true;
                    break;
                }
                Some(_) => {}
                None => break,
            }
        }
        assert!(got_slow, "large head chunk eventually dispatched");
    }

    #[test]
    fn requeue_front_restores_order_cost_and_deficit() {
        let mut sched = DrrScheduler::new(8);
        sched.enqueue(chunk("t", 1, 8));
        sched.enqueue(chunk("t", 2, 8));
        let first = sched.next(usize::MAX).expect("dispatch");
        assert_eq!(first.submission, 1);
        assert_eq!(sched.queued_walkers(&TenantId::new("t")), 8);
        sched.requeue_front(first);
        assert_eq!(sched.queued_walkers(&TenantId::new("t")), 16);
        // The bounced chunk comes back first, and its refunded deficit
        // pays for it without earning another quantum.
        let again = sched.next(usize::MAX).expect("re-dispatch");
        assert_eq!(again.submission, 1, "rejected chunk keeps FIFO position");
    }

    #[test]
    fn oldest_enqueued_at_tracks_queue_fronts() {
        let mut sched = DrrScheduler::new(8);
        assert!(sched.oldest_enqueued_at().is_none());
        let first = chunk("a", 1, 4);
        let first_at = first.enqueued_at;
        sched.enqueue(first);
        sched.enqueue(chunk("b", 2, 4));
        assert_eq!(sched.oldest_enqueued_at(), Some(first_at));
        while sched.next(usize::MAX).is_some() {}
        assert!(sched.oldest_enqueued_at().is_none());
    }

    #[test]
    fn shard_aligned_chunking_partitions_and_bounds() {
        // Owner = v / 10 (contiguous ranges of 10).
        let starts: Vec<VertexId> = (0..35).collect();
        let chunks = shard_aligned_chunks(&starts, |v| (v / 10) as usize, 4);
        let mut seen = [false; 35];
        for (shard, group) in &chunks {
            assert!(group.len() <= 4, "chunk bounded");
            for &(idx, v) in group {
                assert_eq!((v / 10) as usize, *shard, "chunk is shard-aligned");
                assert_eq!(starts[idx as usize], v, "index maps back");
                assert!(!seen[idx as usize], "no duplicates");
                seen[idx as usize] = true;
            }
            // Order within a chunk preserves submission order.
            for pair in group.windows(2) {
                assert!(pair[0].0 < pair[1].0);
            }
        }
        assert!(seen.iter().all(|&s| s), "every start covered");
    }
}

//! # bingo-gateway
//!
//! A **multi-tenant admission gateway** in front of the sharded
//! [`WalkService`](bingo_service::WalkService): the layer that turns the
//! service's binary admit/reject decision (`max_inbox` →
//! `ServiceError::Saturated`) into *queueing, fairness and adaptive
//! backpressure* — what a serving deployment absorbing walk traffic from
//! many independent submitters actually needs.
//!
//! ## Design
//!
//! * **Queued submission** ([`Gateway::submit`]): a request that would
//!   saturate a shard inbox is parked in its tenant's FIFO queue instead
//!   of erroring. Queues are bounded per tenant
//!   ([`GatewayConfig::max_queue_per_tenant`]); only a tenant exceeding
//!   its own bound is refused, with [`GatewayError::Overloaded`].
//! * **Fair scheduling** ([`sched`]): a dispatcher thread drains the
//!   queues by deficit round robin with configurable per-tenant weights
//!   ([`WalkRequest::weight`](bingo_service::WalkRequest::weight),
//!   [`Gateway::set_tenant_weight`]). While tenants stay backlogged, each
//!   receives dispatch bandwidth proportional to its weight — a weight-3
//!   tenant completes ~75% of the steps against a weight-1 tenant under
//!   saturating offered load (measured end to end by
//!   `examples/gateway_fairness.rs` and the DRR property tests).
//! * **Adaptive admission** ([`window`]): the dispatcher samples the
//!   service's occupancy hook
//!   ([`WalkService::admission_snapshot`](bingo_service::WalkService::admission_snapshot))
//!   every tick and sizes its in-flight walker window AIMD-style —
//!   additive growth while calm and window-limited, multiplicative
//!   decrease on saturation rejections or high inbox occupancy. A chunk
//!   the service refuses with a retryable `Saturated` goes back to the
//!   *front* of its queue (deficit refunded, nothing dropped).
//! * **Chunked dispatch** ([`sched::shard_aligned_chunks`]): start sets
//!   are split into shard-aligned chunks of at most
//!   [`GatewayConfig::chunk_walkers`], so fairness granularity is
//!   per-chunk (a giant request cannot monopolize a turn) and a rejection
//!   names exactly the one full inbox.
//! * **Observability** ([`GatewayStats`]): per-tenant queue depth and
//!   peak, dispatched/completed/rejected counts, queue-wait p50/p99, and
//!   the AIMD window trace. The gateway records into the **service's**
//!   telemetry handle
//!   ([`WalkService::telemetry`](bingo_service::WalkService::telemetry)) —
//!   build the service with
//!   [`WalkService::build_with_telemetry`](bingo_service::WalkService::build_with_telemetry)
//!   and the gateway's `gateway.tenant.wait_ns` / `gateway.dispatch_ns`
//!   histograms land in the same registry as the shard-side stages, and
//!   sampled walker lifecycles stitch a `dispatch(...)` span between
//!   `submit` and the per-shard `step`/`hop` spans. See the
//!   "Observability" section of the `bingo_service` crate docs for the
//!   metric taxonomy and trace schema. The `bingo-obs` crate serves all
//!   of it over HTTP (`/metrics`, `/status`, `/healthz`, …) and watches
//!   the gateway for stalls via [`Gateway::oldest_queued_age`]; window
//!   moves and saturation bounces also land in its flight recorder
//!   (see the workspace README's *Observability* section).
//!
//! The wire-in diagram lives in the `bingo_service` crate docs; direct
//! service submission remains fully supported — the gateway is the
//! front-end for workloads where submitters must not starve each other.
//!
//! ## Quickstart
//!
//! ```
//! use bingo_gateway::{Gateway, GatewayConfig};
//! use bingo_graph::{Bias, DynamicGraph};
//! use bingo_service::{ServiceConfig, WalkRequest, WalkService};
//! use bingo_walks::{DeepWalkConfig, WalkSpec};
//! use std::sync::Arc;
//!
//! let mut graph = DynamicGraph::new(64);
//! for v in 0..64u32 {
//!     graph.insert_edge(v, (v + 1) % 64, Bias::from_int(2)).unwrap();
//!     graph.insert_edge(v, (v + 9) % 64, Bias::from_int(1)).unwrap();
//! }
//! let service = Arc::new(
//!     WalkService::build(
//!         &graph,
//!         ServiceConfig { num_shards: 2, max_inbox: 128, ..ServiceConfig::default() },
//!     )
//!     .unwrap(),
//! );
//! let gateway = Gateway::new(service, GatewayConfig::default());
//!
//! // Two tenants, 3:1 weights, the same workload.
//! let spec = WalkSpec::DeepWalk(DeepWalkConfig { walk_length: 8 });
//! let heavy = gateway
//!     .submit(WalkRequest::spec(spec).all_vertices().tenant("heavy").weight(3))
//!     .unwrap();
//! let light = gateway
//!     .submit(WalkRequest::spec(spec).all_vertices().tenant("light").weight(1))
//!     .unwrap();
//!
//! let heavy_out = gateway.wait(heavy).unwrap();
//! let light_out = gateway.wait(light).unwrap();
//! assert_eq!(heavy_out.paths.len(), 64);
//! assert_eq!(light_out.paths.len(), 64);
//!
//! let stats = gateway.shutdown();
//! assert_eq!(stats.total_completed_walks(), 128);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gateway;
pub mod sched;
pub mod stats;
pub mod window;

pub use gateway::{
    Gateway, GatewayClient, GatewayConfig, GatewayError, GatewayHandle, GatewayResults,
    GatewayTicket,
};
pub use stats::{GatewayStats, TenantStatsSnapshot, WindowSample};
pub use window::{AimdConfig, AimdWindow, WindowEvent};

// The tenant vocabulary lives in `bingo-walks`; re-exported so gateway
// users name tenants without a direct dependency.
pub use bingo_walks::{TenantId, TicketMeta};

#[cfg(test)]
mod tests {
    use super::*;
    use bingo_graph::{Bias, DynamicGraph};
    use bingo_service::{ServiceConfig, ServiceError, WalkRequest, WalkService};
    use bingo_walks::{DeepWalkConfig, WalkSpec};
    use std::sync::Arc;

    fn ring_graph(n: usize) -> DynamicGraph {
        let mut g = DynamicGraph::new(n);
        for v in 0..n as u32 {
            g.insert_edge(v, (v + 1) % n as u32, Bias::from_int(2))
                .unwrap();
            g.insert_edge(v, (v + 3) % n as u32, Bias::from_int(1))
                .unwrap();
        }
        g
    }

    fn service(n: usize, max_inbox: usize) -> Arc<WalkService> {
        Arc::new(
            WalkService::build(
                &ring_graph(n),
                ServiceConfig {
                    num_shards: 2,
                    max_inbox,
                    ..ServiceConfig::default()
                },
            )
            .unwrap(),
        )
    }

    fn spec(len: usize) -> WalkSpec {
        WalkSpec::DeepWalk(DeepWalkConfig { walk_length: len })
    }

    #[test]
    fn submissions_complete_with_paths_in_order() {
        let gateway = Gateway::new(service(32, 64), GatewayConfig::default());
        let starts: Vec<u32> = (0..32).rev().collect();
        let ticket = gateway
            .submit(WalkRequest::spec(spec(6)).starts(starts.clone()))
            .unwrap();
        let results = gateway.wait(ticket).unwrap();
        assert_eq!(results.paths.len(), 32);
        for (path, &start) in results.paths.iter().zip(&starts) {
            assert_eq!(path[0], start, "chunked dispatch preserves order");
            assert_eq!(path.len(), 7);
        }
        assert_eq!(results.total_steps(), 32 * 6);
    }

    #[test]
    fn queue_bound_rejects_with_overloaded() {
        // Tiny per-tenant bound; an oversized submission is refused and
        // the error names the tenant, while a fitting one passes.
        let gateway = Gateway::new(
            service(32, 0),
            GatewayConfig {
                max_queue_per_tenant: 8,
                ..GatewayConfig::default()
            },
        );
        let err = gateway
            .submit(
                WalkRequest::spec(spec(4))
                    .starts((0..16).collect())
                    .tenant("greedy"),
            )
            .expect_err("16 walkers exceed the 8-walker bound");
        match err {
            GatewayError::Overloaded {
                tenant, capacity, ..
            } => {
                assert_eq!(tenant.as_str(), "greedy");
                assert_eq!(capacity, 8);
            }
            other => panic!("unexpected error {other:?}"),
        }
        let ok = gateway
            .submit(
                WalkRequest::spec(spec(4))
                    .starts((0..8).collect())
                    .tenant("greedy"),
            )
            .unwrap();
        assert_eq!(gateway.wait(ok).unwrap().paths.len(), 8);
        let stats = gateway.shutdown();
        let t = stats.tenant(&TenantId::new("greedy")).unwrap();
        assert_eq!(t.rejected_overloaded, 1);
        assert_eq!(t.completed_walks, 8);
    }

    #[test]
    fn validation_errors_pass_through_typed() {
        let gateway = Gateway::new(service(16, 0), GatewayConfig::default());
        assert_eq!(
            gateway.submit(WalkRequest::spec(spec(3)).starts(vec![])),
            Err(GatewayError::Rejected(ServiceError::EmptySubmission)).map(|t: GatewayTicket| t)
        );
        match gateway.submit(WalkRequest::spec(spec(3)).starts(vec![99])) {
            Err(GatewayError::Rejected(ServiceError::VertexOutOfRange { vertex: 99, .. })) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn saturated_chunks_requeue_and_finish_under_tiny_inboxes() {
        // max_inbox 4 with chunk/window larger: the dispatcher must hit
        // Saturated, requeue at the front, shrink the window, and still
        // complete everything (nothing dropped).
        let gateway = Gateway::new(
            service(48, 4),
            GatewayConfig {
                chunk_walkers: 16, // clamped to 4 by the inbox bound
                window: AimdConfig {
                    initial: 64,
                    min: 4,
                    ..AimdConfig::default()
                },
                ..GatewayConfig::default()
            },
        );
        let ticket = gateway
            .submit(WalkRequest::spec(spec(8)).all_vertices().tenant("t"))
            .unwrap();
        let results = gateway.wait(ticket).unwrap();
        assert_eq!(results.paths.len(), 48);
        let stats = gateway.shutdown();
        let t = stats.tenant(&TenantId::new("t")).unwrap();
        assert_eq!(t.completed_walks, 48, "every walk served");
        assert_eq!(t.failed_walks, 0, "nothing dropped");
    }

    #[test]
    fn unweighted_submissions_inherit_the_configured_weight() {
        // Regression: a request without an explicit `.weight()` must not
        // reset a weight configured via `set_tenant_weight` back to 1.
        let gateway = Gateway::new(service(16, 0), GatewayConfig::default());
        gateway.set_tenant_weight("vip", 5);
        let t1 = gateway
            .submit(WalkRequest::spec(spec(4)).all_vertices().tenant("vip"))
            .unwrap();
        gateway.wait(t1).unwrap();
        assert_eq!(
            gateway
                .stats()
                .tenant(&TenantId::new("vip"))
                .unwrap()
                .weight,
            5,
            "unweighted submission inherits the configured weight"
        );
        // An explicit weight still updates it.
        let t2 = gateway
            .submit(
                WalkRequest::spec(spec(4))
                    .all_vertices()
                    .tenant("vip")
                    .weight(2),
            )
            .unwrap();
        gateway.wait(t2).unwrap();
        let stats = gateway.shutdown();
        assert_eq!(stats.tenant(&TenantId::new("vip")).unwrap().weight, 2);
    }

    #[test]
    fn gateway_client_matches_walk_output_shape() {
        use bingo_service::CollectionMode;
        let gateway = Gateway::new(service(24, 32), GatewayConfig::default());
        let client = gateway.client();
        let out = client
            .submit(
                WalkRequest::spec(spec(5))
                    .all_vertices()
                    .collect(CollectionMode::VisitCounts),
            )
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(out.num_walks, 24);
        assert_eq!(out.total_steps, 24 * 5);
        assert!(out.paths.is_empty());
        let counts = out.visit_counts.expect("visit counts mode");
        assert_eq!(counts.iter().sum::<u64>() as usize, 24 * 6);
    }

    #[test]
    fn shutdown_drains_then_refuses() {
        let gateway = Gateway::new(service(16, 0), GatewayConfig::default());
        let tickets: Vec<_> = (0..4)
            .map(|_| {
                gateway
                    .submit(WalkRequest::spec(spec(4)).all_vertices())
                    .unwrap()
            })
            .collect();
        for t in tickets {
            assert_eq!(gateway.wait(t).unwrap().paths.len(), 16);
        }
        let stats = gateway.shutdown();
        assert_eq!(stats.total_completed_walks(), 64);
        assert_eq!(stats.in_flight_walkers, 0);
    }
}

//! Gateway observability: per-tenant queue/dispatch/completion counters,
//! queue-wait percentiles, and the AIMD window trace.
//!
//! Like the service's shard counters, the per-tenant accumulators are
//! **views over the shared telemetry registry** (labeled `tenant="…"`), so
//! [`GatewayStats`], the registry expositions and external scrapers read
//! one set of atomics. The queue-wait reservoir (exact microsecond
//! percentiles) stays gateway-local; detailed telemetry additionally
//! records waits into the `gateway.tenant.wait_ns` registry histogram.

use bingo_sampling::rng::SplitMix64;
use bingo_telemetry::{names, Counter, Gauge, Histogram, Telemetry};
use bingo_walks::TenantId;
use std::time::Duration;

/// Cap on retained queue-wait samples per tenant. Retention beyond the cap
/// is **reservoir sampling** (Vitter's Algorithm R): every one of the
/// `wait_seen` dispatches so far has equal probability
/// `WAIT_SAMPLE_CAP / wait_seen` of being in the reservoir, so long-run
/// `wait_p50`/`wait_p99` track the whole run instead of freezing on the
/// first `WAIT_SAMPLE_CAP` (warm-up) dispatches. Snapshots report both the
/// retained and the seen count.
pub const WAIT_SAMPLE_CAP: usize = 65_536;

/// Internal per-tenant accumulator (owned by the gateway state, snapshot
/// into [`TenantStatsSnapshot`]).
#[derive(Debug, Default)]
pub(crate) struct TenantAccum {
    /// Requests accepted (not in the registry taxonomy; walks are the
    /// billing unit there).
    pub submitted_requests: u64,
    /// Walkers handed to the service (taxonomy tracks chunks).
    pub dispatched_walks: u64,
    pub submitted_walks: Counter,
    pub dispatched_chunks: Counter,
    pub completed_walks: Counter,
    pub completed_steps: Counter,
    pub rejected_overloaded: Counter,
    pub saturated_requeues: Counter,
    pub failed_walks: Counter,
    pub peak_queued_walkers: Gauge,
    /// `gateway.tenant.wait_ns` — the registry's log2-bucketed view of the
    /// queue waits (no-op unless telemetry is detailed).
    pub wait_ns: Histogram,
    /// Queue-wait (enqueue → dispatch) reservoir, microseconds.
    pub wait_us: Vec<u64>,
    /// Total waits ever recorded (retained or not).
    pub wait_seen: u64,
    /// SplitMix64 stream driving reservoir replacement. Lazily created
    /// from a fixed seed, so a given dispatch sequence always retains the
    /// same samples (deterministic, reproducible percentiles).
    reservoir_rng: Option<SplitMix64>,
}

impl TenantAccum {
    /// Resolve this tenant's counter set from the shared registry, keyed
    /// by a `tenant` label.
    pub(crate) fn register(telemetry: &Telemetry, tenant: &str) -> Self {
        let labels: &[(&str, &str)] = &[("tenant", tenant)];
        TenantAccum {
            submitted_walks: telemetry.counter_with(names::GATEWAY_TENANT_SUBMITTED_WALKS, labels),
            dispatched_chunks: telemetry
                .counter_with(names::GATEWAY_TENANT_DISPATCHED_CHUNKS, labels),
            completed_walks: telemetry.counter_with(names::GATEWAY_TENANT_COMPLETED_WALKS, labels),
            completed_steps: telemetry.counter_with(names::GATEWAY_TENANT_COMPLETED_STEPS, labels),
            rejected_overloaded: telemetry
                .counter_with(names::GATEWAY_TENANT_REJECTED_OVERLOADED, labels),
            saturated_requeues: telemetry
                .counter_with(names::GATEWAY_TENANT_SATURATED_REQUEUES, labels),
            failed_walks: telemetry.counter_with(names::GATEWAY_TENANT_FAILED_WALKS, labels),
            peak_queued_walkers: telemetry.gauge_with(names::GATEWAY_TENANT_PEAK_QUEUED, labels),
            wait_ns: telemetry.histogram_with(names::GATEWAY_TENANT_WAIT_NS, labels),
            ..TenantAccum::default()
        }
    }

    pub(crate) fn record_wait(&mut self, wait: Duration) {
        self.wait_ns.record_duration(wait);
        self.record_wait_capped(wait, WAIT_SAMPLE_CAP);
    }

    /// Algorithm R with an explicit cap (unit tests use a small one so the
    /// post-cap regime is reachable without 65k+ pushes).
    pub(crate) fn record_wait_capped(&mut self, wait: Duration, cap: usize) {
        let us = wait.as_micros().min(u128::from(u64::MAX)) as u64;
        self.wait_seen += 1;
        if self.wait_us.len() < cap {
            self.wait_us.push(us);
            return;
        }
        // Keep the newcomer with probability cap / seen, evicting a
        // uniformly random incumbent. The modulo bias is < cap / 2^64 —
        // unobservable next to the sampling noise of the percentiles.
        let rng = self.reservoir_rng.get_or_insert_with(|| SplitMix64::new(0));
        let j = rng.next() % self.wait_seen;
        if (j as usize) < cap {
            self.wait_us[j as usize] = us;
        }
    }
}

/// Point-in-time statistics for one tenant.
#[derive(Debug, Clone)]
pub struct TenantStatsSnapshot {
    /// The tenant.
    pub tenant: TenantId,
    /// Its current scheduling weight.
    pub weight: u32,
    /// Walkers queued at the gateway right now.
    pub queued_walkers: usize,
    /// Highest queue depth (walkers) ever observed for this tenant.
    pub peak_queued_walkers: usize,
    /// Requests accepted by [`Gateway::submit`](crate::Gateway::submit).
    pub submitted_requests: u64,
    /// Walkers those requests contained.
    pub submitted_walks: u64,
    /// Chunks handed to the walk service.
    pub dispatched_chunks: u64,
    /// Walkers handed to the walk service.
    pub dispatched_walks: u64,
    /// Walks whose results came back.
    pub completed_walks: u64,
    /// Steps those walks took.
    pub completed_steps: u64,
    /// Submissions bounced with `GatewayError::Overloaded` (queue bound).
    pub rejected_overloaded: u64,
    /// Chunks the service refused with a retryable `Saturated` that were
    /// put back at the queue front (never dropped).
    pub saturated_requeues: u64,
    /// Walks lost to a non-retryable service rejection (terminal error on
    /// their submission; should stay zero in a well-configured deployment).
    pub failed_walks: u64,
    /// Median queue wait (enqueue → dispatch) across retained samples.
    pub wait_p50: Duration,
    /// 99th-percentile queue wait.
    pub wait_p99: Duration,
    /// Worst retained queue wait.
    pub wait_max: Duration,
    /// Retained wait samples backing the percentiles (≤
    /// [`WAIT_SAMPLE_CAP`]; an unbiased reservoir over everything seen).
    pub wait_samples: usize,
    /// Total waits ever recorded — `wait_samples` of these are retained.
    pub wait_recorded: u64,
}

/// One entry of the AIMD window trace.
#[derive(Debug, Clone, Copy)]
pub struct WindowSample {
    /// Time since the gateway started.
    pub at: Duration,
    /// Window value after the adjustment.
    pub window: usize,
    /// Peak shard-inbox occupancy observed at the tick.
    pub peak_occupancy: f64,
    /// Walkers in flight at the tick.
    pub in_flight: usize,
}

/// Aggregate gateway statistics.
#[derive(Debug, Clone, Default)]
pub struct GatewayStats {
    /// Per-tenant snapshots, sorted by tenant id.
    pub per_tenant: Vec<TenantStatsSnapshot>,
    /// Current AIMD window (walkers).
    pub window: usize,
    /// Smallest window the controller reached.
    pub window_min_seen: usize,
    /// Largest window the controller reached.
    pub window_max_seen: usize,
    /// Window adjustments (trace entries are recorded on every change,
    /// capped by the configured trace length).
    pub window_trace: Vec<WindowSample>,
    /// Walkers currently dispatched and not yet completed.
    pub in_flight_walkers: usize,
    /// Dispatcher loop iterations so far.
    pub dispatch_ticks: u64,
    /// Wall-clock time since the gateway was built.
    pub uptime: Duration,
}

impl GatewayStats {
    /// Stats row for `tenant`, if it ever submitted.
    pub fn tenant(&self, tenant: &TenantId) -> Option<&TenantStatsSnapshot> {
        self.per_tenant.iter().find(|t| &t.tenant == tenant)
    }

    /// Total completed steps across all tenants.
    pub fn total_completed_steps(&self) -> u64 {
        self.per_tenant.iter().map(|t| t.completed_steps).sum()
    }

    /// Total completed walks across all tenants.
    pub fn total_completed_walks(&self) -> u64 {
        self.per_tenant.iter().map(|t| t.completed_walks).sum()
    }

    /// `tenant`'s share of all completed steps, in `[0, 1]` (0 when
    /// nothing completed yet) — the quantity the fairness example and
    /// tests compare against the weight share.
    pub fn completed_step_share(&self, tenant: &TenantId) -> f64 {
        let total = self.total_completed_steps();
        if total == 0 {
            return 0.0;
        }
        self.tenant(tenant)
            .map_or(0.0, |t| t.completed_steps as f64 / total as f64)
    }

    /// Render a per-tenant table for logs and examples.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<12} {:>6} {:>8} {:>9} {:>10} {:>10} {:>11} {:>8} {:>9} {:>9}\n",
            "tenant",
            "weight",
            "queued",
            "submitted",
            "dispatched",
            "completed",
            "steps",
            "requeue",
            "p50_wait",
            "p99_wait",
        ));
        for t in &self.per_tenant {
            out.push_str(&format!(
                "{:<12} {:>6} {:>8} {:>9} {:>10} {:>10} {:>11} {:>8} {:>8.1}ms {:>8.1}ms\n",
                t.tenant.as_str(),
                t.weight,
                t.queued_walkers,
                t.submitted_walks,
                t.dispatched_walks,
                t.completed_walks,
                t.completed_steps,
                t.saturated_requeues,
                t.wait_p50.as_secs_f64() * 1e3,
                t.wait_p99.as_secs_f64() * 1e3,
            ));
        }
        out.push_str(&format!(
            "window {} (seen {}..{}), {} in flight, {} ticks, uptime {:.3}s\n",
            self.window,
            self.window_min_seen,
            self.window_max_seen,
            self.in_flight_walkers,
            self.dispatch_ticks,
            self.uptime.as_secs_f64(),
        ));
        out
    }
}

/// Nearest-rank percentile over *already sorted* wait samples, `q` in
/// `[0, 1]`. Callers sort once and read as many percentiles as they need.
pub(crate) fn percentile_sorted(sorted: &[u64], q: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = (sorted.len() as f64 * q).ceil() as usize;
    Duration::from_micros(sorted[rank.saturating_sub(1).min(sorted.len() - 1)])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reservoir_tracks_the_whole_run_not_just_warmup() {
        let cap = 256;
        let mut accum = TenantAccum::default();
        // Warm-up: `cap` fast dispatches at 100µs.
        for _ in 0..cap {
            accum.record_wait_capped(Duration::from_micros(100), cap);
        }
        assert_eq!(accum.wait_us.len(), cap);
        assert_eq!(accum.wait_seen, cap as u64);
        // Then a long steady state 9× larger at 900µs. The truncating cap
        // this replaces would keep p50 frozen at 100µs forever.
        for _ in 0..9 * cap {
            accum.record_wait_capped(Duration::from_micros(900), cap);
        }
        assert_eq!(accum.wait_us.len(), cap, "reservoir never exceeds cap");
        assert_eq!(accum.wait_seen, 10 * cap as u64);
        let mut sorted = accum.wait_us.clone();
        sorted.sort_unstable();
        let p50 = percentile_sorted(&sorted, 0.5);
        assert_eq!(
            p50,
            Duration::from_micros(900),
            "median must reflect steady state (~90% of samples), not warm-up"
        );
        // Warm-up is still *represented* (each of the 10·cap waits has
        // probability 1/10 of retention; P(no 100µs survivor) ≈ 10^-12).
        assert!(
            sorted.first() == Some(&100),
            "some warm-up samples survive in the reservoir"
        );
    }

    #[test]
    fn reservoir_is_deterministic() {
        let feed = |n: u64| {
            let mut accum = TenantAccum::default();
            for i in 0..n {
                accum.record_wait_capped(Duration::from_micros(i * 7 % 1000), 128);
            }
            accum.wait_us
        };
        assert_eq!(feed(5000), feed(5000));
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let mut s: Vec<u64> = (1..=100).rev().collect();
        s.sort_unstable();
        assert_eq!(percentile_sorted(&s, 0.5), Duration::from_micros(50));
        assert_eq!(percentile_sorted(&s, 0.99), Duration::from_micros(99));
        assert_eq!(percentile_sorted(&s, 0.0), Duration::from_micros(1));
        assert_eq!(percentile_sorted(&s, 1.0), Duration::from_micros(100));
        assert_eq!(percentile_sorted(&[], 0.5), Duration::ZERO);
    }

    #[test]
    fn step_share_handles_empty_and_partial() {
        let stats = GatewayStats::default();
        assert_eq!(stats.completed_step_share(&TenantId::new("a")), 0.0);

        let snap = |name: &str, steps: u64| TenantStatsSnapshot {
            tenant: TenantId::new(name),
            weight: 1,
            queued_walkers: 0,
            peak_queued_walkers: 0,
            submitted_requests: 0,
            submitted_walks: 0,
            dispatched_chunks: 0,
            dispatched_walks: 0,
            completed_walks: 0,
            completed_steps: steps,
            rejected_overloaded: 0,
            saturated_requeues: 0,
            failed_walks: 0,
            wait_p50: Duration::ZERO,
            wait_p99: Duration::ZERO,
            wait_max: Duration::ZERO,
            wait_samples: 0,
            wait_recorded: 0,
        };
        let stats = GatewayStats {
            per_tenant: vec![snap("a", 75), snap("b", 25)],
            ..GatewayStats::default()
        };
        assert!((stats.completed_step_share(&TenantId::new("a")) - 0.75).abs() < 1e-12);
        assert!((stats.completed_step_share(&TenantId::new("b")) - 0.25).abs() < 1e-12);
        assert_eq!(stats.completed_step_share(&TenantId::new("c")), 0.0);
        assert!(stats.render().contains("tenant"));
    }
}

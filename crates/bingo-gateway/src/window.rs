//! AIMD control of the gateway's in-flight walker window.
//!
//! The dispatcher never pushes walkers into the service faster than its
//! current *window* allows. Every tick it samples the service's
//! [`admission snapshot`](bingo_service::WalkService::admission_snapshot)
//! and adjusts the window TCP-style:
//!
//! * **multiplicative decrease** when pressure shows — a `Saturated`
//!   rejection was observed (either as a counter delta or first-hand on a
//!   submit), or the fullest shard inbox is above the configured occupancy
//!   threshold;
//! * **additive increase** when the last dispatch round was actually
//!   limited by the window (growing an unused window would just let a
//!   later burst overshoot).
//!
//! Like the scheduler, this is pure state-machine code with no clocks or
//! service handles, so the control law is unit-testable on synthetic
//! pressure traces.

/// Tuning of the [`AimdWindow`] control loop.
#[derive(Debug, Clone, Copy)]
pub struct AimdConfig {
    /// Window at gateway start, in walkers.
    pub initial: usize,
    /// Floor the window never decreases below (keeps progress under
    /// sustained pressure; must be ≥ the largest chunk or dispatch stalls).
    pub min: usize,
    /// Ceiling the window never grows past.
    pub max: usize,
    /// Walkers added per additive-increase tick.
    pub additive_step: usize,
    /// Multiplier applied on decrease (e.g. `0.5` halves the window).
    pub decrease_factor: f64,
    /// Peak shard-inbox occupancy (fraction of `max_inbox`) above which a
    /// tick counts as pressure even without a rejection.
    pub occupancy_high: f64,
}

impl Default for AimdConfig {
    fn default() -> Self {
        AimdConfig {
            initial: 64,
            min: 8,
            max: 1024,
            additive_step: 8,
            decrease_factor: 0.5,
            occupancy_high: 0.75,
        }
    }
}

/// What one control tick decided — recorded into the window trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowEvent {
    /// Pressure: window multiplied down.
    Decrease,
    /// Window-limited and calm: window grew by the additive step.
    Increase,
    /// No change.
    Hold,
}

/// The AIMD window state machine.
#[derive(Debug, Clone)]
pub struct AimdWindow {
    config: AimdConfig,
    window: usize,
    /// Rejection counter at the previous tick (`None` before the first
    /// sample — the first tick only establishes the baseline, otherwise
    /// rejections from before the gateway existed would read as pressure).
    last_rejections: Option<u64>,
}

impl AimdWindow {
    /// A window starting at `config.initial`, clamped into `[min, max]`.
    pub fn new(config: AimdConfig) -> Self {
        let min = config.min.max(1);
        let max = config.max.max(min);
        let window = config.initial.clamp(min, max);
        AimdWindow {
            config: AimdConfig { min, max, ..config },
            window,
            last_rejections: None,
        }
    }

    /// Current in-flight walker budget.
    pub fn window(&self) -> usize {
        self.window
    }

    /// One control tick: `peak_occupancy` is the fullest inbox as a
    /// fraction of its bound, `rejections_total` the service's cumulative
    /// saturation-rejection counter, and `window_limited` whether the last
    /// dispatch round stopped because the window was full.
    pub fn on_tick(
        &mut self,
        peak_occupancy: f64,
        rejections_total: u64,
        window_limited: bool,
    ) -> WindowEvent {
        let rejected = match self.last_rejections {
            Some(prev) => rejections_total > prev,
            None => false,
        };
        self.last_rejections = Some(rejections_total);
        if rejected || peak_occupancy > self.config.occupancy_high {
            self.decrease()
        } else if window_limited && self.window < self.config.max {
            self.window = (self.window + self.config.additive_step).min(self.config.max);
            WindowEvent::Increase
        } else {
            WindowEvent::Hold
        }
    }

    /// Immediate multiplicative decrease — called when a submit comes back
    /// `Saturated` first-hand, without waiting for the next tick.
    pub fn on_saturated(&mut self) -> WindowEvent {
        self.decrease()
    }

    fn decrease(&mut self) -> WindowEvent {
        let shrunk = (self.window as f64 * self.config.decrease_factor).floor() as usize;
        let next = shrunk.max(self.config.min);
        if next == self.window {
            return WindowEvent::Hold;
        }
        self.window = next;
        WindowEvent::Decrease
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(cfg: AimdConfig) -> AimdWindow {
        AimdWindow::new(cfg)
    }

    #[test]
    fn grows_additively_only_when_window_limited() {
        let mut w = window(AimdConfig {
            initial: 32,
            additive_step: 8,
            ..AimdConfig::default()
        });
        assert_eq!(w.on_tick(0.0, 0, false), WindowEvent::Hold);
        assert_eq!(w.window(), 32, "unused window does not grow");
        assert_eq!(w.on_tick(0.0, 0, true), WindowEvent::Increase);
        assert_eq!(w.window(), 40);
    }

    #[test]
    fn halves_on_rejection_delta_and_respects_floor() {
        let mut w = window(AimdConfig {
            initial: 64,
            min: 10,
            ..AimdConfig::default()
        });
        assert_eq!(w.on_tick(0.0, 5, true), WindowEvent::Increase);
        // Counter moved 5 → 7: pressure.
        assert_eq!(w.on_tick(0.0, 7, true), WindowEvent::Decrease);
        assert_eq!(w.window(), 36);
        // Repeated pressure bottoms out at the floor, then holds.
        for total in 8..32 {
            w.on_tick(0.0, total, true);
        }
        assert_eq!(w.window(), 10);
        // At the floor a further decrease is a no-op and reads as Hold.
        assert_eq!(w.on_tick(0.0, 100, true), WindowEvent::Hold);
        assert_eq!(w.window(), 10, "floor");
    }

    #[test]
    fn first_tick_only_baselines_the_rejection_counter() {
        let mut w = window(AimdConfig::default());
        // 1000 rejections happened before this gateway attached; they are
        // history, not pressure.
        assert_eq!(w.on_tick(0.0, 1000, false), WindowEvent::Hold);
        assert_eq!(w.on_tick(0.0, 1000, false), WindowEvent::Hold);
        assert_eq!(w.on_tick(0.0, 1001, false), WindowEvent::Decrease);
    }

    #[test]
    fn high_occupancy_is_pressure_without_rejections() {
        let mut w = window(AimdConfig {
            initial: 100,
            occupancy_high: 0.75,
            ..AimdConfig::default()
        });
        assert_eq!(w.on_tick(0.74, 0, false), WindowEvent::Hold);
        assert_eq!(w.on_tick(0.76, 0, false), WindowEvent::Decrease);
        assert_eq!(w.window(), 50);
    }

    #[test]
    fn saturated_submit_decreases_immediately_and_ceiling_holds() {
        let mut w = window(AimdConfig {
            initial: 40,
            max: 48,
            additive_step: 8,
            ..AimdConfig::default()
        });
        assert_eq!(w.on_saturated(), WindowEvent::Decrease);
        assert_eq!(w.window(), 20);
        for _ in 0..10 {
            w.on_tick(0.0, 0, true);
        }
        assert_eq!(w.window(), 48, "ceiling");
        assert_eq!(w.on_tick(0.0, 0, true), WindowEvent::Hold);
    }
}

//! The gateway proper: bounded per-tenant queues, the dispatcher thread
//! that runs DRR + AIMD, and the submission/collection API.

use crate::sched::{shard_aligned_chunks, Chunk, DrrScheduler};
use crate::stats::{
    percentile_sorted, GatewayStats, TenantAccum, TenantStatsSnapshot, WindowSample,
};
use crate::window::{AimdConfig, AimdWindow, WindowEvent};
use bingo_graph::VertexId;
use bingo_service::{
    CollectionMode, ServiceError, WalkOutput, WalkRequest, WalkService, WalkTicket,
};
use bingo_telemetry::{names, FlightEventKind, Histogram, Telemetry, TraceStage};
use bingo_walks::TenantId;
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Errors produced by the gateway.
#[derive(Debug, Clone, PartialEq)]
pub enum GatewayError {
    /// The tenant's gateway queue is at its configured depth bound
    /// ([`GatewayConfig::max_queue_per_tenant`]): the submission was
    /// refused so one runaway tenant cannot consume unbounded gateway
    /// memory. Nothing already queued was dropped.
    Overloaded {
        /// The tenant whose queue is full.
        tenant: TenantId,
        /// Walkers queued for that tenant at rejection time.
        queued: usize,
        /// The configured per-tenant bound (walkers).
        capacity: usize,
    },
    /// The underlying service rejected the request with a non-admission
    /// error (validation: empty start set, vertex out of range) — or a
    /// chunk hit a non-retryable rejection at dispatch time.
    Rejected(ServiceError),
    /// The gateway is shutting down and accepts no new work.
    ShuttingDown,
}

impl std::fmt::Display for GatewayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GatewayError::Overloaded {
                tenant,
                queued,
                capacity,
            } => write!(
                f,
                "tenant {tenant} queue overloaded ({queued} walkers queued, bound {capacity})"
            ),
            GatewayError::Rejected(e) => write!(f, "rejected by the walk service: {e}"),
            GatewayError::ShuttingDown => write!(f, "gateway is shutting down"),
        }
    }
}

impl std::error::Error for GatewayError {}

impl From<ServiceError> for GatewayError {
    fn from(e: ServiceError) -> Self {
        GatewayError::Rejected(e)
    }
}

/// Configuration of a [`Gateway`].
#[derive(Debug, Clone, Copy)]
pub struct GatewayConfig {
    /// Maximum walkers per dispatched chunk. Clamped to the service's
    /// `max_inbox` (when bounded) so a chunk can always fit an empty
    /// inbox — a larger chunk would be rejected as non-retryable.
    pub chunk_walkers: usize,
    /// DRR deficit earned per weight unit per round, in walkers. Values
    /// near `chunk_walkers` give the tightest weighted interleaving.
    pub quantum_walkers: usize,
    /// Bound on walkers queued per tenant; submissions beyond it are
    /// refused with [`GatewayError::Overloaded`].
    pub max_queue_per_tenant: usize,
    /// AIMD tuning of the in-flight walker window.
    pub window: AimdConfig,
    /// Dispatcher poll cadence while work is in flight: completions are
    /// absorbed and the AIMD controller ticks at this period.
    pub tick: Duration,
    /// Retained AIMD window-trace entries (oldest kept; recording stops at
    /// the cap).
    pub window_trace_cap: usize,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            chunk_walkers: 32,
            quantum_walkers: 32,
            max_queue_per_tenant: 1 << 20,
            window: AimdConfig::default(),
            tick: Duration::from_micros(500),
            window_trace_cap: 4096,
        }
    }
}

/// Handle for retrieving one gateway submission's results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GatewayTicket(u64);

impl GatewayTicket {
    /// The ticket's numeric id.
    pub fn id(&self) -> u64 {
        self.0
    }
}

/// Results of one gateway submission, reassembled from its chunks.
#[derive(Debug, Clone)]
pub struct GatewayResults {
    /// The ticket these results answer.
    pub ticket: GatewayTicket,
    /// Tenant the submission was billed to.
    pub tenant: TenantId,
    /// One path per submitted start vertex, in submission order.
    pub paths: Vec<Vec<VertexId>>,
}

impl GatewayResults {
    /// Total steps across all walks.
    pub fn total_steps(&self) -> usize {
        self.paths.iter().map(|p| p.len().saturating_sub(1)).sum()
    }
}

/// One gateway submission being assembled from chunk completions.
struct Submission {
    tenant: TenantId,
    /// One slot per original start, filled as chunks complete.
    paths: Vec<Option<Vec<VertexId>>>,
    /// Walks not yet accounted (completed or failed).
    remaining: usize,
    /// Terminal failure, if any chunk was rejected non-retryably.
    error: Option<GatewayError>,
}

/// Everything guarded by the gateway's state mutex.
struct State {
    sched: DrrScheduler,
    submissions: HashMap<u64, Submission>,
    tenants: HashMap<TenantId, TenantAccum>,
    next_submission: u64,
    window_now: usize,
    window_min_seen: usize,
    window_max_seen: usize,
    window_trace: Vec<WindowSample>,
    dispatch_ticks: u64,
    shutdown: bool,
}

struct Inner {
    service: Arc<WalkService>,
    config: GatewayConfig,
    /// `chunk_walkers` clamped to the service inbox bound.
    chunk_cap: usize,
    state: Mutex<State>,
    /// Wakes the dispatcher on submissions and shutdown.
    work_cv: Condvar,
    /// Wakes submission waiters on completions.
    done_cv: Condvar,
    /// Walkers dispatched to the service and not yet completed.
    in_flight_walkers: AtomicUsize,
    started_at: Instant,
    /// Shared observability handle — by default the service's own, so
    /// gateway and service metrics/traces land in one registry.
    telemetry: Telemetry,
    /// `gateway.dispatch_ns`: one service-submit call at dispatch.
    dispatch_ns: Histogram,
}

/// Get-or-register the per-tenant accumulator, registering its counters
/// in the shared telemetry registry on first sight of the tenant.
fn tenant_accum<'a>(inner: &Inner, state: &'a mut State, tenant: &TenantId) -> &'a mut TenantAccum {
    state
        .tenants
        .entry(tenant.clone())
        .or_insert_with(|| TenantAccum::register(&inner.telemetry, tenant.as_str()))
}

/// A chunk the dispatcher has submitted and is polling for completion.
struct InFlightChunk {
    ticket: WalkTicket,
    submission: u64,
    tenant: TenantId,
    indices: Vec<u32>,
    cost: usize,
}

/// The multi-tenant admission gateway in front of a [`WalkService`]. See
/// the crate-level documentation for the design tour.
pub struct Gateway {
    inner: Arc<Inner>,
    dispatcher: Option<JoinHandle<()>>,
}

impl Gateway {
    /// Build a gateway over `service` and spawn its dispatcher thread.
    ///
    /// The gateway inherits the service's [`Telemetry`] handle, so its
    /// per-tenant metrics, dispatch latencies and `GatewayDispatch` trace
    /// spans land in the same registry and trace ring as the service's —
    /// one `dump()` shows the whole stack.
    pub fn new(service: Arc<WalkService>, config: GatewayConfig) -> Gateway {
        let telemetry = service.telemetry().clone();
        Self::with_telemetry(service, config, telemetry)
    }

    /// [`Gateway::new`] recording into an explicit [`Telemetry`] handle
    /// (e.g. to isolate gateway metrics from a shared service's).
    pub fn with_telemetry(
        service: Arc<WalkService>,
        config: GatewayConfig,
        telemetry: Telemetry,
    ) -> Gateway {
        let max_inbox = service.max_inbox();
        let chunk_cap = if max_inbox > 0 {
            config.chunk_walkers.clamp(1, max_inbox)
        } else {
            config.chunk_walkers.max(1)
        };
        let window = AimdWindow::new(config.window);
        let inner = Arc::new(Inner {
            service,
            config,
            chunk_cap,
            state: Mutex::new_named(
                State {
                    sched: DrrScheduler::new(config.quantum_walkers.max(1)),
                    submissions: HashMap::new(),
                    tenants: HashMap::new(),
                    next_submission: 1,
                    window_now: window.window(),
                    window_min_seen: window.window(),
                    window_max_seen: window.window(),
                    window_trace: Vec::new(),
                    dispatch_ticks: 0,
                    shutdown: false,
                },
                "gateway.state",
            ),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            in_flight_walkers: AtomicUsize::new(0),
            // lint:allow(determinism): uptime epoch for stats/telemetry
            // only; never feeds walk output.
            started_at: Instant::now(),
            dispatch_ns: telemetry.histogram(names::GATEWAY_DISPATCH_NS),
            telemetry,
        });
        let dispatcher = {
            let inner = inner.clone();
            std::thread::Builder::new()
                .name("bingo-gateway-dispatch".into())
                .spawn(move || run_dispatcher(inner, window))
                .expect("spawn gateway dispatcher")
        };
        Gateway {
            inner,
            dispatcher: Some(dispatcher),
        }
    }

    /// The fronted walk service.
    pub fn service(&self) -> &WalkService {
        &self.inner.service
    }

    /// Configure `tenant`'s scheduling weight ahead of its submissions.
    /// Submissions carrying an explicit [`WalkRequest::weight`] update it
    /// too (most recent explicit setting wins); submissions without one
    /// inherit it.
    pub fn set_tenant_weight(&self, tenant: impl Into<TenantId>, weight: u32) {
        let tenant = tenant.into();
        let mut state = self.inner.state.lock();
        state.sched.set_weight(&tenant, weight.max(1));
    }

    /// Queue a request for dispatch, billed to the request's tenant
    /// ([`WalkRequest::tenant`], default tenant when unset).
    ///
    /// Unlike submitting straight to the service, a request that would
    /// saturate a shard inbox is *parked*, not rejected: it waits in its
    /// tenant's queue until the dispatcher can admit its chunks within
    /// the fairness and backpressure budgets. Only a tenant exceeding its
    /// own queue bound is refused ([`GatewayError::Overloaded`]).
    pub fn submit(&self, request: WalkRequest) -> Result<GatewayTicket, GatewayError> {
        let num_vertices = self.inner.service.num_vertices();
        let parts = request.into_parts();
        let starts = parts
            .starts
            .unwrap_or_else(|| (0..num_vertices as VertexId).collect());
        if starts.is_empty() {
            return Err(GatewayError::Rejected(ServiceError::EmptySubmission));
        }
        for &s in &starts {
            if (s as usize) >= num_vertices {
                return Err(GatewayError::Rejected(ServiceError::VertexOutOfRange {
                    vertex: s,
                    num_vertices,
                }));
            }
        }
        let tenant = parts.meta.tenant.clone();
        let partitioner = self.inner.service.partitioner();

        let mut state = self.inner.state.lock();
        if state.shutdown {
            return Err(GatewayError::ShuttingDown);
        }
        let queued = state.sched.queued_walkers(&tenant);
        let capacity = self.inner.config.max_queue_per_tenant;
        if queued + starts.len() > capacity {
            tenant_accum(&self.inner, &mut state, &tenant)
                .rejected_overloaded
                .inc();
            return Err(GatewayError::Overloaded {
                tenant,
                queued,
                capacity,
            });
        }
        // An explicit per-request weight updates the tenant's share; a
        // request without one inherits whatever is configured (via
        // `set_tenant_weight` or an earlier weighted request) instead of
        // resetting it to the default.
        if parts.meta.weight.is_some() {
            state
                .sched
                .set_weight(&tenant, parts.meta.effective_weight());
        }

        let id = state.next_submission;
        state.next_submission += 1;
        state.submissions.insert(
            id,
            Submission {
                tenant: tenant.clone(),
                paths: (0..starts.len()).map(|_| None).collect(),
                remaining: starts.len(),
                error: None,
            },
        );
        // lint:allow(determinism): queue-wait timestamp feeding the
        // tenant wait histogram (telemetry); walks never observe it.
        let now = Instant::now();
        for (shard, group) in
            shard_aligned_chunks(&starts, |v| partitioner.owner(v), self.inner.chunk_cap)
        {
            let (indices, vertices): (Vec<u32>, Vec<VertexId>) = group.into_iter().unzip();
            state.sched.enqueue(Chunk {
                tenant: tenant.clone(),
                submission: id,
                model: parts.model.clone(),
                starts: vertices,
                indices,
                shard,
                seed: parts.seed,
                enqueued_at: now,
            });
        }
        let new_depth = state.sched.queued_walkers(&tenant);
        let accum = tenant_accum(&self.inner, &mut state, &tenant);
        accum.submitted_requests += 1;
        accum.submitted_walks.add(starts.len() as u64);
        accum
            .peak_queued_walkers
            .raise(i64::try_from(new_depth).unwrap_or(i64::MAX));
        drop(state);
        self.inner.work_cv.notify_all();
        Ok(GatewayTicket(id))
    }

    /// Block until every walk of `ticket` completed (or its submission
    /// failed terminally) and return the assembled results.
    pub fn wait(&self, ticket: GatewayTicket) -> Result<GatewayResults, GatewayError> {
        let mut state = self.inner.state.lock();
        loop {
            let sub = state
                .submissions
                .get(&ticket.0)
                .expect("unknown or already-collected gateway ticket");
            if sub.remaining == 0 {
                return Self::take_results(&mut state, ticket);
            }
            state = self.inner.done_cv.wait(state);
        }
    }

    /// Non-blocking completion check; `None` while walks are outstanding.
    pub fn try_wait(&self, ticket: GatewayTicket) -> Option<Result<GatewayResults, GatewayError>> {
        let mut state = self.inner.state.lock();
        let sub = state
            .submissions
            .get(&ticket.0)
            .expect("unknown or already-collected gateway ticket");
        if sub.remaining == 0 {
            Some(Self::take_results(&mut state, ticket))
        } else {
            None
        }
    }

    fn take_results(
        state: &mut State,
        ticket: GatewayTicket,
    ) -> Result<GatewayResults, GatewayError> {
        let sub = state
            .submissions
            .remove(&ticket.0)
            .expect("checked present");
        if let Some(err) = sub.error {
            return Err(err);
        }
        Ok(GatewayResults {
            ticket,
            tenant: sub.tenant,
            paths: sub
                .paths
                .into_iter()
                .map(|p| p.expect("all walks completed"))
                .collect(),
        })
    }

    /// Point-in-time gateway statistics.
    pub fn stats(&self) -> GatewayStats {
        // Copy the raw material out under the lock; the O(n log n)
        // percentile work happens after releasing it, so pollers sampling
        // stats in a tight loop don't serialize the dispatcher (which
        // needs this mutex for every dispatch and absorb).
        let (mut rows, mut stats) = {
            let state = self.inner.state.lock();
            let rows: Vec<(TenantStatsSnapshot, Vec<u64>)> = state
                .tenants
                .iter()
                .map(|(tenant, accum)| {
                    (
                        TenantStatsSnapshot {
                            tenant: tenant.clone(),
                            weight: state.sched.weight(tenant),
                            queued_walkers: state.sched.queued_walkers(tenant),
                            peak_queued_walkers: accum.peak_queued_walkers.get().max(0) as usize,
                            submitted_requests: accum.submitted_requests,
                            submitted_walks: accum.submitted_walks.get(),
                            dispatched_chunks: accum.dispatched_chunks.get(),
                            dispatched_walks: accum.dispatched_walks,
                            completed_walks: accum.completed_walks.get(),
                            completed_steps: accum.completed_steps.get(),
                            rejected_overloaded: accum.rejected_overloaded.get(),
                            saturated_requeues: accum.saturated_requeues.get(),
                            failed_walks: accum.failed_walks.get(),
                            wait_p50: Duration::ZERO,
                            wait_p99: Duration::ZERO,
                            wait_max: Duration::ZERO,
                            wait_samples: accum.wait_us.len(),
                            wait_recorded: accum.wait_seen,
                        },
                        accum.wait_us.clone(),
                    )
                })
                .collect();
            let stats = GatewayStats {
                per_tenant: Vec::new(),
                window: state.window_now,
                window_min_seen: state.window_min_seen,
                window_max_seen: state.window_max_seen,
                window_trace: state.window_trace.clone(),
                // Acquire: pairs with the AcqRel dispatch/absorb updates
                // so the snapshot is no fresher than the state beside it.
                in_flight_walkers: self.inner.in_flight_walkers.load(Ordering::Acquire),
                dispatch_ticks: state.dispatch_ticks,
                uptime: self.inner.started_at.elapsed(),
            };
            (rows, stats)
        };
        for (snapshot, waits) in &mut rows {
            waits.sort_unstable();
            snapshot.wait_p50 = percentile_sorted(waits, 0.50);
            snapshot.wait_p99 = percentile_sorted(waits, 0.99);
            snapshot.wait_max = percentile_sorted(waits, 1.0);
        }
        stats.per_tenant = rows.into_iter().map(|(snapshot, _)| snapshot).collect();
        stats.per_tenant.sort_by(|a, b| a.tenant.cmp(&b.tenant));
        stats
    }

    /// Age of the oldest chunk still waiting in a tenant queue, `None`
    /// when every queue is empty. The observability plane's stall
    /// watchdog uses this to spot a gateway whose backlog sits still
    /// (e.g. a wedged service keeping the window shut).
    pub fn oldest_queued_age(&self) -> Option<Duration> {
        let oldest = {
            let state = self.inner.state.lock();
            state.sched.oldest_enqueued_at()
        };
        oldest.map(|at| at.elapsed())
    }

    /// Drain every queued and in-flight chunk, stop the dispatcher, and
    /// return the final statistics. New submissions are refused from the
    /// moment this is called.
    pub fn shutdown(mut self) -> GatewayStats {
        self.begin_shutdown();
        if let Some(handle) = self.dispatcher.take() {
            let _ = handle.join();
        }
        self.stats()
    }

    fn begin_shutdown(&self) {
        let mut state = self.inner.state.lock();
        state.shutdown = true;
        drop(state);
        self.inner.work_cv.notify_all();
    }
}

impl Drop for Gateway {
    fn drop(&mut self) {
        self.begin_shutdown();
        if let Some(handle) = self.dispatcher.take() {
            let _ = handle.join();
        }
    }
}

/// The dispatcher loop: absorb completions, tick the AIMD controller,
/// dispatch under DRR within the window, park until there is work.
fn run_dispatcher(inner: Arc<Inner>, mut window: AimdWindow) {
    let mut in_flight: Vec<InFlightChunk> = Vec::new();
    let mut window_limited = false;
    loop {
        // Phase 1 — poll in-flight tickets, outside the state lock (the
        // service has its own locking; holding ours would serialize
        // submitters against completion polling for no reason).
        let mut completed = Vec::new();
        let mut i = 0;
        while i < in_flight.len() {
            match inner.service.try_wait(in_flight[i].ticket) {
                Some(results) => {
                    let chunk = in_flight.swap_remove(i);
                    completed.push((chunk, results));
                }
                None => i += 1,
            }
        }

        // Phase 2 — AIMD control tick on the service's occupancy hook.
        let snapshot = inner.service.admission_snapshot();
        let event = window.on_tick(
            snapshot.peak_occupancy(),
            snapshot.saturated_rejections,
            window_limited,
        );

        let mut state = inner.state.lock();
        state.dispatch_ticks += 1;
        record_window(
            &inner,
            &mut state,
            &window,
            event,
            snapshot.peak_occupancy(),
        );
        for (chunk, results) in completed {
            absorb_chunk(&inner, &mut state, chunk, results);
        }

        // Phase 3 — dispatch within the window, fairness order decided by
        // the DRR scheduler.
        window_limited = false;
        loop {
            // Acquire: the AIMD budget decision must observe every
            // completed absorb's fetch_sub (AcqRel) — a stale occupancy
            // here would over-admit past the window.
            let occupied = inner.in_flight_walkers.load(Ordering::Acquire);
            let budget = window.window().saturating_sub(occupied);
            if budget == 0 {
                window_limited = !state.sched.is_empty();
                break;
            }
            let Some(chunk) = state.sched.next(budget) else {
                // Queue non-empty but nothing fit the remaining budget:
                // the window, not the queues, is the limiter.
                window_limited = !state.sched.is_empty();
                break;
            };
            let dispatch_started = inner.telemetry.timer();
            let submit_result = match chunk.seed {
                Some(seed) => {
                    inner
                        .service
                        .submit_model_seeded(chunk.model.clone(), &chunk.starts, seed)
                }
                None => inner
                    .service
                    .submit_model(chunk.model.clone(), &chunk.starts),
            };
            match submit_result {
                Ok(ticket) => {
                    if let Some(started) = dispatch_started {
                        inner.dispatch_ns.record_duration(started.elapsed());
                    }
                    // AcqRel: synchronization-bearing occupancy counter —
                    // the dispatcher's window budget reads it with Acquire.
                    inner
                        .in_flight_walkers
                        .fetch_add(chunk.cost(), Ordering::AcqRel);
                    let wait = chunk.enqueued_at.elapsed();
                    let accum = tenant_accum(&inner, &mut state, &chunk.tenant);
                    accum.dispatched_chunks.inc();
                    accum.dispatched_walks += chunk.cost() as u64;
                    accum.record_wait(wait);
                    // Stitch DRR-dispatch spans into the sampled walker
                    // lifecycles. The sampling key is the *service* ticket
                    // plus the walker's index within this chunk — the same
                    // key the service hashed when it recorded the Submit
                    // span a moment ago, so the gateway agrees on the
                    // sampled set without any coordination.
                    if inner.telemetry.tracer().is_some() {
                        let wait_ns = u64::try_from(wait.as_nanos()).unwrap_or(u64::MAX);
                        for idx in 0..chunk.starts.len() as u64 {
                            if inner.telemetry.is_sampled(ticket.id(), idx) {
                                inner.telemetry.trace(
                                    ticket.id(),
                                    idx as u32,
                                    TraceStage::GatewayDispatch {
                                        tenant: chunk.tenant.as_str().to_string(),
                                        wait_ns,
                                        gateway_ticket: chunk.submission,
                                    },
                                );
                            }
                        }
                    }
                    in_flight.push(InFlightChunk {
                        ticket,
                        submission: chunk.submission,
                        tenant: chunk.tenant,
                        cost: chunk.starts.len(),
                        indices: chunk.indices,
                    });
                }
                Err(err) if err.is_retryable() => {
                    // The target inbox is full right now: park the chunk
                    // back at its queue front (nothing dropped, deficit
                    // refunded) and halve the window — we pushed too hard.
                    if let ServiceError::Saturated { shard, queued, .. } = &err {
                        inner
                            .telemetry
                            .flight()
                            .record(FlightEventKind::SaturatedBounce {
                                shard: *shard as u64,
                                depth: *queued as u64,
                            });
                    }
                    tenant_accum(&inner, &mut state, &chunk.tenant)
                        .saturated_requeues
                        .inc();
                    state.sched.requeue_front(chunk);
                    let ev = window.on_saturated();
                    record_window(&inner, &mut state, &window, ev, snapshot.peak_occupancy());
                    break;
                }
                Err(err) => {
                    fail_chunk(&inner, &mut state, chunk, err);
                }
            }
        }

        // Phase 4 — exit or park.
        if state.shutdown && state.sched.is_empty() && in_flight.is_empty() {
            break;
        }
        if in_flight.is_empty() && state.sched.is_empty() {
            // Fully idle: sleep until a submission (or shutdown) arrives —
            // zero CPU while the gateway has nothing to do.
            let _unused = inner.work_cv.wait(state);
        } else {
            // Work outstanding: wake after a tick to poll completions and
            // re-run the controller (or earlier, on a new submission).
            let _unused = inner.work_cv.wait_timeout(state, inner.config.tick);
        }
    }
}

/// Fold one completed chunk into its submission and tenant counters.
fn absorb_chunk(
    inner: &Inner,
    state: &mut State,
    chunk: InFlightChunk,
    results: bingo_service::TicketResults,
) {
    // AcqRel: releases this chunk's completion to the dispatcher's
    // Acquire window-budget read.
    inner
        .in_flight_walkers
        .fetch_sub(chunk.cost, Ordering::AcqRel);
    let steps = results.total_steps();
    let accum = tenant_accum(inner, state, &chunk.tenant);
    accum.completed_walks.add(results.paths.len() as u64);
    accum.completed_steps.add(steps as u64);
    if let Some(sub) = state.submissions.get_mut(&chunk.submission) {
        for (&index, path) in chunk.indices.iter().zip(results.paths) {
            sub.paths[index as usize] = Some(path);
        }
        sub.remaining = sub.remaining.saturating_sub(chunk.indices.len());
        if sub.remaining == 0 {
            inner.done_cv.notify_all();
        }
    }
}

/// Terminal rejection of a chunk: record the failure on its submission so
/// the waiter receives a typed error instead of hanging.
fn fail_chunk(inner: &Inner, state: &mut State, chunk: Chunk, err: ServiceError) {
    let accum = tenant_accum(inner, state, &chunk.tenant);
    accum.failed_walks.add(chunk.cost() as u64);
    if let Some(sub) = state.submissions.get_mut(&chunk.submission) {
        sub.error.get_or_insert(GatewayError::Rejected(err));
        sub.remaining = sub.remaining.saturating_sub(chunk.cost());
        if sub.remaining == 0 {
            inner.done_cv.notify_all();
        }
    }
}

/// Publish the controller's window into the shared state and extend the
/// trace on changes.
fn record_window(
    inner: &Inner,
    state: &mut State,
    window: &AimdWindow,
    event: WindowEvent,
    peak_occupancy: f64,
) {
    let w = window.window();
    state.window_now = w;
    state.window_min_seen = state.window_min_seen.min(w);
    state.window_max_seen = state.window_max_seen.max(w);
    if event != WindowEvent::Hold {
        inner
            .telemetry
            .flight()
            .record(FlightEventKind::WindowChange { window: w as u64 });
    }
    if event != WindowEvent::Hold && state.window_trace.len() < inner.config.window_trace_cap {
        state.window_trace.push(WindowSample {
            at: inner.started_at.elapsed(),
            window: w,
            peak_occupancy,
            in_flight: inner.in_flight_walkers.load(Ordering::Acquire), // window-trace sample
        });
    }
}

/// A [`WalkClient`](bingo_service::WalkClient)-style front-end over the
/// gateway: submit the same [`WalkRequest`]s, get a [`WalkOutput`] back.
pub struct GatewayClient<'a> {
    gateway: &'a Gateway,
}

impl Gateway {
    /// A request front-end mirroring `WalkClient`'s submit/wait surface.
    pub fn client(&self) -> GatewayClient<'_> {
        GatewayClient { gateway: self }
    }
}

impl<'a> GatewayClient<'a> {
    /// Queue a request; the returned handle collects the output.
    pub fn submit(&self, request: WalkRequest) -> Result<GatewayHandle<'a>, GatewayError> {
        let mode = request.collection_mode();
        let ticket = self.gateway.submit(request)?;
        Ok(GatewayHandle {
            gateway: self.gateway,
            ticket,
            mode,
        })
    }
}

/// Handle to an in-progress gateway request.
pub struct GatewayHandle<'a> {
    gateway: &'a Gateway,
    ticket: GatewayTicket,
    mode: CollectionMode,
}

impl GatewayHandle<'_> {
    /// The underlying gateway ticket.
    pub fn ticket(&self) -> GatewayTicket {
        self.ticket
    }

    /// Block until the request completed and return the output in the
    /// request's collection mode.
    pub fn wait(self) -> Result<WalkOutput, GatewayError> {
        let results = self.gateway.wait(self.ticket)?;
        Ok(into_output(
            results,
            self.mode,
            self.gateway.service().num_vertices(),
        ))
    }

    /// Non-blocking poll for the output.
    pub fn try_collect(&self) -> Option<Result<WalkOutput, GatewayError>> {
        self.gateway.try_wait(self.ticket).map(|r| {
            r.map(|results| into_output(results, self.mode, self.gateway.service().num_vertices()))
        })
    }
}

fn into_output(results: GatewayResults, mode: CollectionMode, num_vertices: usize) -> WalkOutput {
    let total_steps = results.total_steps();
    match mode {
        CollectionMode::Paths => WalkOutput {
            num_walks: results.paths.len(),
            total_steps,
            paths: results.paths,
            visit_counts: None,
        },
        CollectionMode::VisitCounts => {
            let mut counts = vec![0u64; num_vertices];
            let num_walks = results.paths.len();
            for path in &results.paths {
                for &v in path {
                    if let Some(slot) = counts.get_mut(v as usize) {
                        *slot += 1;
                    }
                }
            }
            WalkOutput {
                paths: Vec::new(),
                visit_counts: Some(counts),
                num_walks,
                total_steps,
            }
        }
    }
}

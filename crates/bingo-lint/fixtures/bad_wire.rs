//! Fixture: `wire-format` must fire on endianness, width, and ordering
//! hazards in a wire-path file — and stay quiet on the escaped line.

use std::collections::HashMap;

pub struct FrameIndex {
    pub offsets: HashMap<u32, usize>,
}

pub fn encode(path: &[u32], buf: &mut Vec<u8>) {
    buf.extend_from_slice(&path.len().to_le_bytes());
    for v in path {
        buf.extend_from_slice(&v.to_be_bytes());
    }
}

pub fn decode_len(raw: [u8; 8]) -> usize {
    usize::from_le_bytes(raw)
}

pub fn decode_tag(raw: [u8; 4]) -> u32 {
    // lint:allow(wire-format) interop with a fixed big-endian peer
    u32::from_be_bytes(raw)
}

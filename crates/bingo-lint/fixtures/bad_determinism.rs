//! Fixture: `determinism` must fire on a clock read, an entropy-seeded
//! RNG, and an order-sensitive HashMap iteration — and must accept the
//! order-insensitive fold at the bottom.

use std::collections::HashMap;
use std::time::Instant;

pub fn timed_walk() -> u64 {
    let start = Instant::now();
    start.elapsed().as_nanos() as u64
}

pub fn seeded_badly() -> u64 {
    let mut rng = thread_rng();
    rng.next_u64()
}

pub fn ordered_output(weights: HashMap<u64, f64>) -> Vec<u64> {
    let mut out = Vec::new();
    for (k, _) in weights.iter() {
        out.push(*k);
    }
    out
}

pub fn order_insensitive_ok(weights: HashMap<u64, f64>) -> f64 {
    weights.values().sum()
}

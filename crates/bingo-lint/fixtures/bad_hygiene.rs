//! Fixture: `panic-hygiene` must fire on the bare `unwrap()` and the
//! `println!` when linted under a serving-layer virtual path, and accept
//! the `expect` with its invariant message.

pub fn handle(input: Option<u64>) -> u64 {
    let v = input.unwrap();
    println!("handled {v}");
    v
}

pub fn handle_documented(input: Option<u64>) -> u64 {
    input.expect("caller validated the ticket before dispatch")
}

//! Fixture: `metric-names` must fire on a counter whose name literal is
//! not in the bingo-telemetry taxonomy.

use bingo_telemetry::Registry;

pub fn record(registry: &Registry) {
    registry.counter("walks.misspelled.total").incr(1);
}

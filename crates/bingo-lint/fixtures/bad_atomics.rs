//! Fixture: `atomics-ordering` must fire on an unjustified Relaxed.
//! Linted with a virtual path inside a non-telemetry crate.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::Relaxed);
}

pub fn bump_justified(counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::Relaxed); // relaxed-ok: stats counter
}

//! Fixture: `lock-discipline` must fire twice — once for the ABBA
//! cycle (`take_ab` orders a→b, `take_ba` orders b→a) and once for the
//! lock held across a blocking `recv`.

use parking_lot::Mutex;
use std::sync::mpsc::Receiver;

pub struct Pair {
    alpha: Mutex<u64>,
    beta: Mutex<u64>,
    inbox: Mutex<Receiver<u64>>,
}

impl Pair {
    pub fn take_ab(&self) -> u64 {
        let a = self.alpha.lock();
        let b = self.beta.lock();
        *a + *b
    }

    pub fn take_ba(&self) -> u64 {
        let b = self.beta.lock();
        let a = self.alpha.lock();
        *a + *b
    }

    pub fn drain_holding_lock(&self) -> u64 {
        let rx = self.inbox.lock();
        rx.recv().unwrap_or(0)
    }
}

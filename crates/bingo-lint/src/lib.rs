//! Project-specific static analysis for the Bingo workspace.
//!
//! `bingo-lint` is an offline, dependency-free lint pass built on a
//! hand-rolled token-level lexer ([`lexer`]). It enforces the concurrency
//! and determinism invariants the hand-rolled runtime depends on — things
//! `rustc`/`clippy` cannot know are load-bearing here:
//!
//! | rule | what it enforces |
//! |------|------------------|
//! | `atomics-ordering` | every `Ordering::Relaxed` is telemetry-path or carries `// relaxed-ok: <reason>` |
//! | `determinism` | no wall-clock reads / entropy-seeded RNG / unordered map iteration outside whitelisted layers |
//! | `lock-discipline` | consistent cross-function lock order (no cycles), no lock held across a blocking call |
//! | `metric-names` | metric-name string literals exist in `bingo-telemetry/src/names.rs` |
//! | `panic-hygiene` | no `unwrap()` / `println!` in `bingo-service`/`bingo-gateway` non-test code |
//!
//! Escape hatches, strictest first:
//!
//! - `// relaxed-ok: <reason>` — justifies one `Ordering::Relaxed`
//!   statement (atomics-ordering only);
//! - `// lint:allow(<rule>): <reason>` — suppresses `<rule>` for the
//!   statement it annotates (any rule);
//! - `lint.allow` at the workspace root — baseline entries of the form
//!   `<rule> <path-prefix>`, for adopting the gate on legacy code.
//!
//! Test code (`#[test]` fns, `#[cfg(test)]` items) and the fixture
//! corpus are exempt from every rule. Run as
//! `cargo run -p bingo-lint -- --workspace`.

pub mod lexer;
pub mod rules;

use lexer::Lexed;
use std::collections::BTreeSet;
use std::fmt;
use std::path::{Path, PathBuf};

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule that fired (e.g. `atomics-ordering`).
    pub rule: &'static str,
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description with the expected remedy.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// A file to lint: a workspace-relative path (rules are path-sensitive)
/// plus its source text. The path does not need to exist on disk, which
/// lets tests lint fixture snippets *as if* they lived in a given crate.
#[derive(Debug, Clone)]
pub struct FileInput {
    /// Workspace-relative path, `/`-separated (e.g.
    /// `crates/bingo-service/src/service.rs`).
    pub path: String,
    /// Full source text.
    pub source: String,
}

/// Cross-file lint configuration.
#[derive(Debug, Clone, Default)]
pub struct LintConfig {
    /// The metric-name taxonomy (string values of the consts in
    /// `bingo-telemetry/src/names.rs`). Empty disables the
    /// `metric-names` rule.
    pub metric_names: BTreeSet<String>,
    /// Baseline suppressions: `(rule, path-prefix)` pairs from
    /// `lint.allow`.
    pub allow: Vec<(String, String)>,
    /// Restrict the run to one rule (CLI `--rule`).
    pub only_rule: Option<String>,
}

impl LintConfig {
    fn baseline_allows(&self, rule: &str, path: &str) -> bool {
        self.allow
            .iter()
            .any(|(r, prefix)| r == rule && path.starts_with(prefix.as_str()))
    }

    fn rule_enabled(&self, rule: &str) -> bool {
        self.only_rule.as_deref().is_none_or(|only| only == rule)
    }
}

/// The rule names, in report order.
pub const RULES: &[(&str, &str)] = &[
    (
        "atomics-ordering",
        "Ordering::Relaxed outside telemetry needs `// relaxed-ok: <reason>`",
    ),
    (
        "determinism",
        "no wall clocks, entropy-seeded RNG, or unordered map iteration in deterministic layers",
    ),
    (
        "lock-discipline",
        "consistent cross-function lock order; no lock held across a blocking call",
    ),
    (
        "metric-names",
        "metric-name literals must exist in bingo-telemetry/src/names.rs",
    ),
    (
        "panic-hygiene",
        "no unwrap()/println! in bingo-service/bingo-gateway non-test code",
    ),
    (
        "wire-format",
        "wire-path files: little-endian only, no usize on the wire, no unordered containers",
    ),
];

/// The crate a workspace-relative path belongs to (`crates/x/...` or
/// `shims/x/...` → `x`), or `""` for root-level files.
pub(crate) fn crate_of(path: &str) -> &str {
    let mut parts = path.split('/');
    match parts.next() {
        Some("crates") | Some("shims") => parts.next().unwrap_or(""),
        _ => "",
    }
}

/// Lint a set of in-memory files. This is the core entry point; the CLI
/// and the test suite both go through it.
pub fn lint_files(files: &[FileInput], cfg: &LintConfig) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut lock_edges = Vec::new();
    for file in files {
        let lexed = lexer::lex(&file.source);
        if cfg.rule_enabled("atomics-ordering") {
            findings.extend(rules::atomics::check(&file.path, &lexed));
        }
        if cfg.rule_enabled("determinism") {
            findings.extend(rules::determinism::check(&file.path, &lexed));
        }
        if cfg.rule_enabled("lock-discipline") {
            let (edges, blocking) = rules::locks::collect(&file.path, &lexed);
            lock_edges.extend(edges);
            findings.extend(blocking);
        }
        if cfg.rule_enabled("metric-names") && !cfg.metric_names.is_empty() {
            findings.extend(rules::metrics::check(&file.path, &lexed, &cfg.metric_names));
        }
        if cfg.rule_enabled("panic-hygiene") {
            findings.extend(rules::hygiene::check(&file.path, &lexed));
        }
        if cfg.rule_enabled("wire-format") {
            findings.extend(rules::wire::check(&file.path, &lexed));
        }
    }
    if cfg.rule_enabled("lock-discipline") {
        findings.extend(rules::locks::find_cycles(&lock_edges));
    }
    findings.retain(|f| !cfg.baseline_allows(f.rule, &f.file));
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    findings
}

/// Recursively collect the workspace's lintable `.rs` files: `crates/*/src`
/// and `shims/*/src` (library + shim code). Integration tests, examples
/// and benches are covered by the rules' own path whitelists where they
/// matter, and excluded here where they don't (tests are all-test code by
/// definition; the fixture corpus is known-bad on purpose).
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<FileInput>> {
    let mut out = Vec::new();
    for top in ["crates", "shims"] {
        let top_dir = root.join(top);
        if !top_dir.is_dir() {
            continue;
        }
        for entry in std::fs::read_dir(&top_dir)? {
            let krate = entry?.path();
            let src = krate.join("src");
            if src.is_dir() {
                collect_rs(&src, &mut out, root)?;
            }
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rs(&root_src, &mut out, root)?;
    }
    out.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(out)
}

fn collect_rs(dir: &Path, out: &mut Vec<FileInput>, root: &Path) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out, root)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push(FileInput {
                path: rel,
                source: std::fs::read_to_string(&path)?,
            });
        }
    }
    Ok(())
}

/// Parse `bingo-telemetry/src/names.rs`-style sources for
/// `pub const NAME: &str = "value";` items and return the values.
pub fn parse_metric_names(source: &str) -> BTreeSet<String> {
    let lexed = lexer::lex(source);
    let mut names = BTreeSet::new();
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        if toks[i].text == "const" {
            // const IDENT : & str = "value" ;
            if let Some(value) = toks[i..]
                .iter()
                .take(10)
                .find(|t| t.kind == lexer::TokKind::Str)
            {
                names.insert(value.text.clone());
            }
        }
    }
    names
}

/// Load the `lint.allow` baseline: one `<rule> <path-prefix>` entry per
/// line, `#` comments and blank lines ignored.
pub fn parse_baseline(text: &str) -> Vec<(String, String)> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|l| {
            let mut parts = l.split_whitespace();
            match (parts.next(), parts.next()) {
                (Some(rule), Some(prefix)) => Some((rule.to_string(), prefix.to_string())),
                _ => None,
            }
        })
        .collect()
}

/// Lint the workspace rooted at `root` end-to-end: collect files, load
/// the taxonomy and baseline, run every rule.
pub fn lint_workspace(root: &Path, only_rule: Option<&str>) -> std::io::Result<Vec<Finding>> {
    let files = workspace_files(root)?;
    let names_path: PathBuf = root.join("crates/bingo-telemetry/src/names.rs");
    let metric_names = match std::fs::read_to_string(&names_path) {
        Ok(src) => parse_metric_names(&src),
        Err(_) => BTreeSet::new(),
    };
    let allow = match std::fs::read_to_string(root.join("lint.allow")) {
        Ok(text) => parse_baseline(&text),
        Err(_) => Vec::new(),
    };
    let cfg = LintConfig {
        metric_names,
        allow,
        only_rule: only_rule.map(str::to_string),
    };
    Ok(lint_files(&files, &cfg))
}

/// Shared helper: skip a token when it is test code or carries the
/// rule's `lint:allow` escape in its statement window.
pub(crate) fn exempt(lexed: &Lexed, idx: usize, rule: &str) -> bool {
    let line = lexed.tokens[idx].line;
    lexed.is_test_line(line) || lexed.window_has_comment(idx, &format!("lint:allow({rule})"))
}

//! The `bingo-lint` CLI.
//!
//! ```text
//! cargo run -p bingo-lint -- --workspace          # lint the whole tree
//! cargo run -p bingo-lint -- path/to/file.rs ...  # lint specific files
//! cargo run -p bingo-lint -- --workspace --rule lock-discipline
//! cargo run -p bingo-lint -- --list-rules
//! ```
//!
//! Exit code 0 = clean, 1 = findings, 2 = usage/IO error. Findings print
//! one per line as `file:line: [rule] message`.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: bingo-lint [--workspace | FILE...] [--rule RULE] [--list-rules]\n\
         run `--list-rules` for the rule catalogue"
    );
    ExitCode::from(2)
}

/// Locate the workspace root: walk up from CWD to the first directory
/// holding a `Cargo.toml` that declares `[workspace]`.
fn workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut workspace = false;
    let mut rule: Option<String> = None;
    let mut files: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--rule" => match it.next() {
                Some(r) => rule = Some(r),
                None => return usage(),
            },
            "--list-rules" => {
                for (name, what) in bingo_lint::RULES {
                    println!("{name:16} {what}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => return usage(),
            f if !f.starts_with('-') => files.push(arg),
            _ => return usage(),
        }
    }
    if let Some(r) = &rule {
        if !bingo_lint::RULES.iter().any(|(name, _)| name == r) {
            eprintln!("bingo-lint: unknown rule `{r}` (see --list-rules)");
            return ExitCode::from(2);
        }
    }
    // Exactly one input mode: `--workspace` with no file list, or a
    // non-empty file list without `--workspace`.
    if workspace != files.is_empty() {
        return usage();
    }

    let findings = if workspace {
        let Some(root) = workspace_root() else {
            eprintln!("bingo-lint: no workspace Cargo.toml found above the current directory");
            return ExitCode::from(2);
        };
        match bingo_lint::lint_workspace(&root, rule.as_deref()) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("bingo-lint: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        let mut inputs = Vec::new();
        for f in &files {
            match std::fs::read_to_string(Path::new(f)) {
                Ok(source) => inputs.push(bingo_lint::FileInput {
                    path: f.clone(),
                    source,
                }),
                Err(e) => {
                    eprintln!("bingo-lint: {f}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        let cfg = bingo_lint::LintConfig {
            only_rule: rule,
            ..Default::default()
        };
        bingo_lint::lint_files(&inputs, &cfg)
    };

    for finding in &findings {
        println!("{finding}");
    }
    if findings.is_empty() {
        eprintln!("bingo-lint: clean");
        ExitCode::SUCCESS
    } else {
        eprintln!("bingo-lint: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}

//! A hand-rolled token-level Rust lexer: just enough syntax awareness for
//! the lint rules to reason about real code without a full parser.
//!
//! The lexer understands the things that break naive `grep`-style
//! scanning:
//!
//! - **strings** — plain, raw (`r#"..."#` at any hash depth), byte, and
//!   raw-byte literals, with escape sequences; their contents never
//!   produce tokens;
//! - **comments** — line and (nested) block comments; contents are kept
//!   aside per line so rules can find `// relaxed-ok:` / `// lint:allow`
//!   escape hatches;
//! - **char vs lifetime** — `'a'` is a char literal, `'a` a lifetime;
//! - **attributes & test regions** — `#[test]` / `#[cfg(test)]` items are
//!   resolved to line ranges so rules can skip test-only code.
//!
//! Tokens carry their 1-based line for findings and for the
//! statement-window escape-hatch search ([`Lexed::statement_start_line`]).

use std::collections::HashMap;

/// What a token is; the lexer does not classify keywords (rules match on
/// ident text instead).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Punctuation, one char per token (`::` arrives as two `:`).
    Punct,
    /// Numeric literal.
    Num,
    /// String literal of any flavor (content dropped).
    Str,
    /// Char literal (content dropped).
    Char,
    /// Lifetime such as `'a`.
    Lifetime,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token class.
    pub kind: TokKind,
    /// Source text (for `Str`, the *unquoted, unescaped-as-written* body —
    /// good enough for metric-name matching, which uses plain literals).
    pub text: String,
    /// 1-based source line of the token's first character.
    pub line: u32,
}

/// The lexer's output for one file.
#[derive(Debug)]
pub struct Lexed {
    /// All non-comment tokens in source order.
    pub tokens: Vec<Token>,
    /// Comment text per 1-based line (all comments touching the line,
    /// concatenated). Block comments contribute to every line they span.
    pub comments: HashMap<u32, String>,
    /// `test_lines[line as usize]` (1-based, index 0 unused) — whether the
    /// line sits inside a `#[test]` fn or `#[cfg(test)]` item.
    pub test_lines: Vec<bool>,
}

impl Lexed {
    /// Whether `line` (1-based) is inside test-only code.
    pub fn is_test_line(&self, line: u32) -> bool {
        self.test_lines.get(line as usize).copied().unwrap_or(false)
    }

    /// The 1-based line on which the statement containing token `idx`
    /// starts: the line of the first token after the closest preceding
    /// `;`, `{` or `}`. Escape-hatch comments are honored anywhere from
    /// one line above that through the flagged line, which covers
    /// rustfmt-wrapped multi-line chains.
    pub fn statement_start_line(&self, idx: usize) -> u32 {
        let mut start = self.tokens[idx].line;
        for i in (0..idx).rev() {
            let t = &self.tokens[i];
            if t.kind == TokKind::Punct && matches!(t.text.as_str(), ";" | "{" | "}") {
                break;
            }
            start = t.line;
        }
        start
    }

    /// Whether any comment in the statement window of token `idx`
    /// contains `needle`. The window runs from the statement's first line
    /// through the token's line, extended upward over the contiguous
    /// block of comment lines directly above the statement — so a
    /// justification wrapped across several `//` lines still counts.
    pub fn window_has_comment(&self, idx: usize, needle: &str) -> bool {
        let end = self.tokens[idx].line;
        let mut start = self.statement_start_line(idx);
        while start > 1 && self.comments.contains_key(&(start - 1)) {
            start -= 1;
        }
        (start..=end).any(|line| {
            self.comments
                .get(&line)
                .is_some_and(|text| text.contains(needle))
        })
    }
}

/// Lex `source` into tokens + comments + test-region map.
pub fn lex(source: &str) -> Lexed {
    let bytes = source.as_bytes();
    let mut tokens = Vec::new();
    let mut comments: HashMap<u32, String> = HashMap::new();
    let mut i = 0usize;
    let mut line: u32 = 1;

    let mut note_comment = |line: u32, text: &str| {
        let entry = comments.entry(line).or_default();
        if !entry.is_empty() {
            entry.push(' ');
        }
        entry.push_str(text);
    };

    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                note_comment(line, &source[start..i]);
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                let mut depth = 1usize;
                let mut seg_start = i;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else if bytes[i] == b'\n' {
                        note_comment(line, source[seg_start..i].trim_end());
                        line += 1;
                        i += 1;
                        seg_start = i;
                    } else {
                        i += 1;
                    }
                }
                note_comment(line, source[seg_start..i].trim_end());
            }
            '"' => {
                let (body, end, newlines) = scan_string(source, i);
                tokens.push(Token {
                    kind: TokKind::Str,
                    text: body,
                    line,
                });
                line += newlines;
                i = end;
            }
            'r' | 'b' if starts_string(bytes, i) => {
                // Raw / byte / raw-byte string: skip the prefix, then any
                // `#`s, then scan to the matching close quote.
                let (body, end, newlines) = scan_prefixed_string(source, i);
                tokens.push(Token {
                    kind: TokKind::Str,
                    text: body,
                    line,
                });
                line += newlines;
                i = end;
            }
            '\'' => {
                // Lifetime if `'` + ident-start and not closed by another
                // `'` right after one ident char (i.e. `'a'` is a char).
                let next = bytes.get(i + 1).copied().map(|b| b as char);
                let is_lifetime = matches!(next, Some(n) if n.is_alphabetic() || n == '_')
                    && bytes.get(i + 2) != Some(&b'\'');
                if is_lifetime {
                    let start = i + 1;
                    i += 1;
                    while i < bytes.len() && is_ident_char(bytes[i]) {
                        i += 1;
                    }
                    tokens.push(Token {
                        kind: TokKind::Lifetime,
                        text: source[start..i].to_string(),
                        line,
                    });
                } else {
                    // Char literal: skip escapes until the closing quote.
                    i += 1;
                    while i < bytes.len() {
                        match bytes[i] {
                            b'\\' => i += 2,
                            b'\'' => {
                                i += 1;
                                break;
                            }
                            b'\n' => break, // malformed; resync at newline
                            _ => i += 1,
                        }
                    }
                    tokens.push(Token {
                        kind: TokKind::Char,
                        text: String::new(),
                        line,
                    });
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && (is_ident_char(bytes[i]) || bytes[i] == b'.') {
                    // Stop a float scan at `..` (range) or `.ident` (call).
                    if bytes[i] == b'.'
                        && (bytes.get(i + 1) == Some(&b'.')
                            || bytes.get(i + 1).is_some_and(|&b| b.is_ascii_alphabetic()))
                    {
                        break;
                    }
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokKind::Num,
                    text: source[start..i].to_string(),
                    line,
                });
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && is_ident_char(bytes[i]) {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokKind::Ident,
                    text: source[start..i].to_string(),
                    line,
                });
            }
            _ => {
                tokens.push(Token {
                    kind: TokKind::Punct,
                    text: c.to_string(),
                    line,
                });
                i += c.len_utf8();
            }
        }
    }

    let total_lines = line as usize + 1;
    let test_lines = mark_test_regions(&tokens, total_lines);
    Lexed {
        tokens,
        comments,
        test_lines,
    }
}

fn is_ident_char(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Does `r`/`b` at `i` start a (raw/byte) string literal?
fn starts_string(bytes: &[u8], i: usize) -> bool {
    let mut j = i + 1;
    if bytes.get(i) == Some(&b'b') && bytes.get(j) == Some(&b'r') {
        j += 1;
    }
    while bytes.get(j) == Some(&b'#') {
        j += 1;
    }
    bytes.get(j) == Some(&b'"')
        && !(bytes.get(i) == Some(&b'b') && bytes.get(i + 1) == Some(&b'\''))
}

/// Scan a plain `"..."` string starting at the opening quote. Returns
/// (body, index-after-close, newline count).
fn scan_string(source: &str, start: usize) -> (String, usize, u32) {
    let bytes = source.as_bytes();
    let mut i = start + 1;
    let body_start = i;
    let mut newlines = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => {
                return (source[body_start..i].to_string(), i + 1, newlines);
            }
            b'\n' => {
                newlines += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    (source[body_start..i].to_string(), i, newlines)
}

/// Scan an `r"..."` / `b"..."` / `r#"..."#` / `br##"..."##` literal
/// starting at the prefix. Returns (body, index-after-close, newlines).
fn scan_prefixed_string(source: &str, start: usize) -> (String, usize, u32) {
    let bytes = source.as_bytes();
    let mut i = start;
    let mut raw = false;
    while matches!(bytes.get(i), Some(b'r') | Some(b'b')) {
        raw |= bytes[i] == b'r';
        i += 1;
    }
    let mut hashes = 0usize;
    while bytes.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    debug_assert_eq!(bytes.get(i), Some(&b'"'));
    i += 1;
    let body_start = i;
    let mut newlines = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if !raw => i += 2,
            b'"' => {
                let close = &bytes[i + 1..];
                if close.len() >= hashes && close[..hashes].iter().all(|&b| b == b'#') {
                    return (source[body_start..i].to_string(), i + 1 + hashes, newlines);
                }
                i += 1;
            }
            b'\n' => {
                newlines += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    (source[body_start..i].to_string(), i, newlines)
}

/// Resolve `#[test]` / `#[cfg(test)]` attributes to the line span of the
/// item they annotate.
fn mark_test_regions(tokens: &[Token], total_lines: usize) -> Vec<bool> {
    let mut test = vec![false; total_lines + 1];
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].kind == TokKind::Punct
            && tokens[i].text == "#"
            && tokens.get(i + 1).is_some_and(|t| t.text == "[")
        {
            // Collect the attribute's tokens up to the matching `]`.
            let mut j = i + 2;
            let mut depth = 1usize;
            let mut attr: Vec<&str> = Vec::new();
            while j < tokens.len() && depth > 0 {
                match tokens[j].text.as_str() {
                    "[" => depth += 1,
                    "]" => depth -= 1,
                    t if depth == 1 => attr.push(t),
                    _ => {}
                }
                j += 1;
            }
            let is_test_attr = attr == ["test"] || attr == ["cfg", "(", "test", ")"];
            if is_test_attr {
                let attr_line = tokens[i].line;
                // Find the annotated item's body: the first `{` after any
                // further attributes; a `;` first means a bodyless item.
                let mut k = j;
                let mut end_line = attr_line;
                while k < tokens.len() {
                    match tokens[k].text.as_str() {
                        "#" if tokens.get(k + 1).is_some_and(|t| t.text == "[") => {
                            // skip stacked attribute
                            let mut d = 1usize;
                            k += 2;
                            while k < tokens.len() && d > 0 {
                                match tokens[k].text.as_str() {
                                    "[" => d += 1,
                                    "]" => d -= 1,
                                    _ => {}
                                }
                                k += 1;
                            }
                        }
                        ";" => {
                            end_line = tokens[k].line;
                            break;
                        }
                        "{" => {
                            let mut d = 1usize;
                            k += 1;
                            while k < tokens.len() && d > 0 {
                                match tokens[k].text.as_str() {
                                    "{" => d += 1,
                                    "}" => d -= 1,
                                    _ => {}
                                }
                                k += 1;
                            }
                            // k is just past the closing `}`.
                            end_line = tokens[k.saturating_sub(1)].line;
                            break;
                        }
                        _ => k += 1,
                    }
                }
                for l in attr_line..=end_line {
                    if (l as usize) < test.len() {
                        test[l as usize] = true;
                    }
                }
                i = k.max(j);
                continue;
            }
            i = j;
            continue;
        }
        i += 1;
    }
    test
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_produce_no_code_tokens() {
        let lexed = lex(r##"let s = "Ordering::Relaxed"; // Ordering::Relaxed
let r = r#"Instant::now()"#; /* unwrap() */"##);
        assert!(!lexed
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Ident && (t.text == "Relaxed" || t.text == "unwrap")));
        assert!(lexed.comments[&1].contains("Ordering::Relaxed"));
    }

    #[test]
    fn lifetime_vs_char() {
        let lexed = lex("fn f<'a>(x: &'a u8) { let c = 'b'; let n = '\\n'; }");
        let lifetimes: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let chars = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .count();
        assert_eq!(chars, 2);
    }

    #[test]
    fn cfg_test_region_is_marked() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\nfn prod2() {}\n";
        let lexed = lex(src);
        assert!(!lexed.is_test_line(1));
        assert!(lexed.is_test_line(2));
        assert!(lexed.is_test_line(4));
        assert!(!lexed.is_test_line(6));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let lexed = lex("#[cfg(not(test))]\nfn prod() {}\n");
        assert!(!lexed.is_test_line(2));
    }

    #[test]
    fn statement_window_spans_wrapped_chains() {
        let src = "fn f() {\n    let x = foo\n        .bar()\n        .baz();\n}\n";
        let lexed = lex(src);
        let baz = lexed
            .tokens
            .iter()
            .position(|t| t.text == "baz")
            .expect("baz token");
        assert_eq!(lexed.statement_start_line(baz), 2);
    }
}

//! `wire-format` — the serialization-boundary hygiene rule.
//!
//! Files that define on-wire layouts (`**/wire.rs`, `**/wire/**`) must
//! encode portably and deterministically: every integer crosses the
//! boundary as fixed-width little-endian (the spec in
//! `bingo_walks::wire`). Three patterns break that and are flagged:
//!
//! - **native/big-endian conversions** (`to_ne_bytes`, `from_ne_bytes`,
//!   `to_be_bytes`, `from_be_bytes`) — `ne` silently changes the format
//!   between hosts, `be` silently diverges from the spec;
//! - **platform-width `usize` flowing into a byte conversion** — a
//!   `usize` mentioned in the same statement as
//!   `to_le_bytes`/`from_le_bytes`, or the `.len().to_le_bytes()`
//!   shape. Lengths must be pinned through one audited width helper
//!   (see `len_u32` in `bingo_walks::wire`) so a 32-bit peer reads the
//!   same frame;
//! - **unordered containers** (`HashMap`/`HashSet`) — their iteration
//!   order would leak into the byte stream; wire code uses sorted
//!   `Vec`s (or `BTreeMap`) so equal values encode to equal bytes.
//!
//! A justified exception carries `// lint:allow(wire-format)` in its
//! statement window (e.g. interop with a fixed big-endian peer).

use crate::lexer::{Lexed, TokKind};
use crate::{exempt, Finding};

pub(crate) const RULE: &str = "wire-format";

/// Only files that define wire layouts are held to this rule.
fn checked(path: &str) -> bool {
    path.ends_with("/wire.rs") || path.contains("/wire/")
}

const NON_LE: &[&str] = &[
    "to_ne_bytes",
    "from_ne_bytes",
    "to_be_bytes",
    "from_be_bytes",
];

/// Token index range of the statement containing `idx`: from just after
/// the closest preceding `;`/`{`/`}` through just before the next one.
fn statement_span(lexed: &Lexed, idx: usize) -> (usize, usize) {
    let toks = &lexed.tokens;
    let boundary = |i: usize| {
        toks[i].kind == TokKind::Punct && matches!(toks[i].text.as_str(), ";" | "{" | "}")
    };
    let mut start = idx;
    while start > 0 && !boundary(start - 1) {
        start -= 1;
    }
    let mut end = idx + 1;
    while end < toks.len() && !boundary(end) {
        end += 1;
    }
    (start, end)
}

pub fn check(path: &str, lexed: &Lexed) -> Vec<Finding> {
    let mut findings = Vec::new();
    if !checked(path) {
        return findings;
    }
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let message = match t.text.as_str() {
            text if NON_LE.contains(&text) => format!(
                "`{text}` in a wire-format file: the wire is fixed-width little-endian \
                 (use to_le_bytes/from_le_bytes, or justify with `// lint:allow({RULE})`)"
            ),
            "HashMap" | "HashSet" => format!(
                "unordered `{}` in a wire-format file: iteration order would leak into \
                 the byte stream; use a sorted Vec or BTreeMap",
                t.text
            ),
            "to_le_bytes" | "from_le_bytes" => {
                // `.len().to_le_bytes()` encodes a platform-width length
                // directly; a `usize` anywhere else in the statement means
                // one flows into the conversion unpinned.
                let after_len_call = i >= 4
                    && toks[i - 1].text == "."
                    && toks[i - 2].text == ")"
                    && toks[i - 3].text == "("
                    && toks[i - 4].text == "len";
                let (s, e) = statement_span(lexed, i);
                let usize_in_stmt = toks[s..e]
                    .iter()
                    .any(|t| t.kind == TokKind::Ident && t.text == "usize");
                if !(after_len_call || usize_in_stmt) {
                    continue;
                }
                format!(
                    "platform-width usize flows into `{}`: pin the width through an \
                     audited helper (e.g. a u32 length guard) so 32-bit peers read \
                     the same frame",
                    t.text
                )
            }
            _ => continue,
        };
        if exempt(lexed, i, RULE) {
            continue;
        }
        findings.push(Finding {
            rule: RULE,
            file: path.to_string(),
            line: t.line,
            message,
        });
    }
    findings
}

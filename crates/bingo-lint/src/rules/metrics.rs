//! `metric-names` — keep the metric taxonomy closed.
//!
//! Every metric name used in code must exist as a const in
//! `bingo-telemetry/src/names.rs` (the stable `layer.scope.metric`
//! taxonomy). Code that goes through `names::CONST` is checked by the
//! compiler already; this rule catches the bypass — a string literal
//! passed straight to `counter("...")` / `gauge("...")` /
//! `histogram("...")`, which would mint an off-taxonomy metric that no
//! dashboard or exposition consumer knows about.

use crate::lexer::{Lexed, TokKind};
use crate::{crate_of, exempt, Finding};
use std::collections::BTreeSet;

pub(crate) const RULE: &str = "metric-names";

const REGISTER_METHODS: &[&str] = &["counter", "gauge", "histogram"];

pub fn check(path: &str, lexed: &Lexed, names: &BTreeSet<String>) -> Vec<Finding> {
    let mut findings = Vec::new();
    // The telemetry crate itself may handle arbitrary names (it defines
    // the registry and its tests/fixtures); everyone else must stay on
    // the taxonomy.
    if crate_of(path) == "bingo-telemetry" {
        return findings;
    }
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || !REGISTER_METHODS.contains(&t.text.as_str()) {
            continue;
        }
        // Shape: `.method ( "literal"` — a direct string argument.
        if i == 0 || toks[i - 1].text != "." {
            continue;
        }
        let Some(open) = toks.get(i + 1).filter(|t| t.text == "(") else {
            continue;
        };
        let _ = open;
        let Some(arg) = toks.get(i + 2).filter(|t| t.kind == TokKind::Str) else {
            continue;
        };
        if names.contains(&arg.text) || exempt(lexed, i, RULE) {
            continue;
        }
        findings.push(Finding {
            rule: RULE,
            file: path.to_string(),
            line: arg.line,
            message: format!(
                "metric name \"{}\" is not in the bingo-telemetry taxonomy \
                 (crates/bingo-telemetry/src/names.rs): add a const there and use \
                 `names::...` instead of a string literal",
                arg.text,
            ),
        });
    }
    findings
}

//! `atomics-ordering` — the workspace-wide memory-ordering audit.
//!
//! Bingo's determinism claim rides on hand-rolled synchronization, so
//! every `Ordering::Relaxed` must be *provably* plain data: a telemetry
//! or stats counter (anything in `bingo-telemetry`, which is counters by
//! construction), or annotated in place with `// relaxed-ok: <reason>`
//! naming the argument why no ordering is needed. Synchronization-bearing
//! atomics (cursors other threads observe, completion/claim flags) must
//! use Acquire/Release — i.e. they simply can't appear as `Relaxed`
//! without a reviewable justification.

use crate::lexer::{Lexed, TokKind};
use crate::{crate_of, exempt, Finding};

pub(crate) const RULE: &str = "atomics-ordering";

/// Paths whose `Relaxed` sites are whitelisted wholesale: the telemetry
/// crate is counters/gauges by construction (its one synchronization
/// point, the epoch counter, already uses `add_release`/`get_acquire`).
fn whitelisted(path: &str) -> bool {
    crate_of(path) == "bingo-telemetry"
}

pub fn check(path: &str, lexed: &Lexed) -> Vec<Finding> {
    let mut findings = Vec::new();
    if whitelisted(path) {
        return findings;
    }
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || t.text != "Relaxed" {
            continue;
        }
        // Require the `Ordering::Relaxed` shape (or a lone `Relaxed` after
        // `use ... Ordering::{..}`? — no: a bare `Relaxed` ident outside a
        // path is matched too, erring strict).
        let is_path = i >= 2 && toks[i - 1].text == ":" && toks[i - 2].text == ":";
        if is_path && i >= 3 && toks[i - 3].text != "Ordering" {
            continue; // some other `X::Relaxed`
        }
        if exempt(lexed, i, RULE) || lexed.window_has_comment(i, "relaxed-ok") {
            continue;
        }
        findings.push(Finding {
            rule: RULE,
            file: path.to_string(),
            line: t.line,
            message: "Ordering::Relaxed outside the telemetry layer: justify with \
                      `// relaxed-ok: <reason>` or upgrade to Acquire/Release if this \
                      atomic synchronizes data"
                .to_string(),
        });
    }
    findings
}

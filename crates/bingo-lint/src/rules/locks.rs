//! `lock-discipline` — the static half of the lock-order story.
//!
//! For every function body the rule extracts the sequence of lock
//! acquisitions (`.lock()`, `.try_lock()`, `.read()`, `.write()`) with an
//! approximation of guard lifetimes good enough for real code:
//!
//! - a guard bound by `let g = x.lock()` (incl. `if let Some(g) =
//!   x.try_lock()`) lives until its enclosing block closes or an explicit
//!   `drop(g)`;
//! - an unbound guard (`x.lock().field = ...`) lives to the end of its
//!   statement;
//! - `cv.wait(g)` keeps `g`'s lock held (the wait re-acquires before
//!   returning).
//!
//! Acquiring `B` while holding `A` contributes the edge `A -> B` to a
//! cross-function, cross-crate graph keyed `crate.field`; a cycle in
//! that graph means two call paths disagree about the order — a
//! potential ABBA deadlock — and is reported on each participating edge.
//! The rule also flags a **lock held across a blocking call** (`recv`,
//! `recv_timeout`, `join`, `sleep`, and condvar `wait` on a *different*
//! lock's guard): such a hold extends the critical section by an
//! unbounded wait and is deadlock-adjacent; intentional designs (the
//! service's single-drainer hand-off) must say so with
//! `// lint:allow(lock-discipline): <reason>`.
//!
//! The static pass sees every code path but cannot see through calls;
//! the runtime checker in the `parking_lot` shim (`BINGO_LOCK_CHECK=on`)
//! covers the interprocedural orders on executed paths. CI runs both.

use crate::lexer::{Lexed, TokKind};
use crate::{crate_of, exempt, Finding};
use std::collections::{BTreeMap, BTreeSet};

pub(crate) const RULE: &str = "lock-discipline";

/// One observed `held -> acquired` pair.
#[derive(Debug, Clone)]
pub struct LockEdge {
    /// Qualified name (`crate.field`) of the lock already held.
    pub from: String,
    /// Qualified name of the lock being acquired.
    pub to: String,
    /// Where the acquisition happened.
    pub file: String,
    /// 1-based line of the acquisition.
    pub line: u32,
}

const LOCK_METHODS: &[&str] = &["lock", "try_lock", "read", "write"];
const BLOCKING_METHODS: &[&str] = &["recv", "recv_timeout", "join", "sleep"];

/// The `parking_lot` shim is the checker itself; its internal `.lock()`s
/// on `std` primitives are the instrumentation, not workspace locking
/// discipline.
fn path_exempt(path: &str) -> bool {
    path.starts_with("shims/parking_lot/")
}

#[derive(Debug)]
struct Held {
    /// Qualified lock name (`crate.field`).
    name: String,
    /// Guard binding, when `let`-bound.
    bound: Option<String>,
    /// Brace depth (within the function body) at acquisition.
    depth: i32,
    /// Unbound temporary — released at the next `;` of its depth.
    temp: bool,
}

/// Scan one file: return the lock-order edges it contributes and any
/// held-across-blocking findings.
pub fn collect(path: &str, lexed: &Lexed) -> (Vec<LockEdge>, Vec<Finding>) {
    let mut edges = Vec::new();
    let mut findings = Vec::new();
    if path_exempt(path) {
        return (edges, findings);
    }
    let krate = crate_of(path);
    let toks = &lexed.tokens;
    let mut i = 0;
    while i < toks.len() {
        // Find `fn name ... {` and process the body.
        if toks[i].kind == TokKind::Ident
            && toks[i].text == "fn"
            && toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident)
        {
            // Skip to the body's `{` (or `;` for a bodyless signature),
            // ignoring braces inside generics/where clauses is not needed:
            // `{` cannot appear in a type position we'd cross here.
            let mut j = i + 2;
            while j < toks.len() && toks[j].text != "{" && toks[j].text != ";" {
                j += 1;
            }
            if j >= toks.len() || toks[j].text == ";" {
                i = j + 1;
                continue;
            }
            let body_end = scan_function(path, krate, lexed, j, &mut edges, &mut findings);
            i = body_end;
            continue;
        }
        i += 1;
    }
    (edges, findings)
}

/// Process one function body starting at the `{` at `open`. Returns the
/// index just past the matching `}`.
fn scan_function(
    path: &str,
    krate: &str,
    lexed: &Lexed,
    open: usize,
    edges: &mut Vec<LockEdge>,
    findings: &mut Vec<Finding>,
) -> usize {
    let toks = &lexed.tokens;
    let mut held: Vec<Held> = Vec::new();
    let mut depth = 1i32;
    let mut i = open + 1;
    while i < toks.len() && depth > 0 {
        let t = &toks[i];
        match t.text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                held.retain(|h| h.depth <= depth);
            }
            ";" => held.retain(|h| !(h.temp && h.depth >= depth)),
            _ => {}
        }
        // `drop ( ident )` — explicit release.
        if t.kind == TokKind::Ident
            && t.text == "drop"
            && toks.get(i + 1).is_some_and(|t| t.text == "(")
            && toks.get(i + 2).is_some_and(|t| t.kind == TokKind::Ident)
            && toks.get(i + 3).is_some_and(|t| t.text == ")")
        {
            let var = toks[i + 2].text.as_str();
            held.retain(|h| h.bound.as_deref() != Some(var));
            i += 4;
            continue;
        }
        // `. lockmethod ( )` — an acquisition.
        if t.kind == TokKind::Ident
            && LOCK_METHODS.contains(&t.text.as_str())
            && i >= 1
            && toks[i - 1].text == "."
            && toks.get(i + 1).is_some_and(|t| t.text == "(")
            && toks.get(i + 2).is_some_and(|t| t.text == ")")
        {
            if let Some(recv) = receiver_name(toks, i - 1) {
                if !lexed.is_test_line(t.line) {
                    let name = format!("{krate}.{recv}");
                    let exempted = exempt(lexed, i, RULE);
                    if !exempted {
                        for h in &held {
                            if h.name != name {
                                edges.push(LockEdge {
                                    from: h.name.clone(),
                                    to: name.clone(),
                                    file: path.to_string(),
                                    line: t.line,
                                });
                            }
                        }
                    }
                    let bound = binding_of(lexed, i);
                    held.push(Held {
                        name,
                        temp: bound.is_none(),
                        bound,
                        depth,
                    });
                }
            }
            i += 3;
            continue;
        }
        // Blocking call while locks are held.
        if t.kind == TokKind::Ident && i >= 1 {
            let is_blocking_method = BLOCKING_METHODS.contains(&t.text.as_str())
                && (toks[i - 1].text == "." || toks[i - 1].text == ":")
                && toks.get(i + 1).is_some_and(|t| t.text == "(");
            let condvar_wait = (t.text == "wait" || t.text == "wait_timeout")
                && toks[i - 1].text == "."
                && toks.get(i + 1).is_some_and(|t| t.text == "(");
            if is_blocking_method || condvar_wait {
                // For a condvar wait, the guard passed as the first
                // argument is *supposed* to be held — exclude its lock.
                let waited_var = if condvar_wait {
                    toks.get(i + 2)
                        .filter(|t| t.kind == TokKind::Ident)
                        .map(|t| t.text.clone())
                } else {
                    None
                };
                let still_held: Vec<&Held> = held
                    .iter()
                    .filter(|h| h.bound != waited_var || waited_var.is_none())
                    .collect();
                if !still_held.is_empty() && !lexed.is_test_line(t.line) && !exempt(lexed, i, RULE)
                {
                    let names: Vec<&str> = still_held.iter().map(|h| h.name.as_str()).collect();
                    findings.push(Finding {
                        rule: RULE,
                        file: path.to_string(),
                        line: t.line,
                        message: format!(
                            "lock{} `{}` held across blocking call `{}`: shrink the \
                             critical section or justify with \
                             `// lint:allow(lock-discipline): <reason>`",
                            if names.len() == 1 { "" } else { "s" },
                            names.join("`, `"),
                            t.text,
                        ),
                    });
                }
            }
        }
        i += 1;
    }
    held.clear();
    i
}

/// The lock's field/variable name for the `.` at index `dot` (the token
/// before `.lock`): `self.pending.lock()` → `pending`;
/// `graph().lock()` → `graph`; `inputs[i].lock()` → `inputs`.
fn receiver_name(toks: &[crate::lexer::Token], dot: usize) -> Option<String> {
    if dot == 0 {
        return None;
    }
    let prev = &toks[dot - 1];
    match prev.text.as_str() {
        ")" | "]" => {
            // Walk back over the balanced group, then take the ident.
            let close = prev.text.as_bytes()[0];
            let open = if close == b')' { ")" } else { "]" };
            let open_ch = if close == b')' { "(" } else { "[" };
            let mut depth = 1i32;
            let mut j = dot - 1;
            while j > 0 && depth > 0 {
                j -= 1;
                if toks[j].text == open {
                    depth += 1;
                } else if toks[j].text == open_ch {
                    depth -= 1;
                }
            }
            (j > 0 && toks[j - 1].kind == TokKind::Ident).then(|| toks[j - 1].text.clone())
        }
        _ if prev.kind == TokKind::Ident && prev.text != "self" => Some(prev.text.clone()),
        _ => None,
    }
}

/// The variable the acquisition's guard is bound to, if the statement is
/// a `let` binding: handles `let [mut] g = ...`,
/// `[if|while] let Some(g) = ...`, `let Ok(g) = ...`.
fn binding_of(lexed: &Lexed, idx: usize) -> Option<String> {
    let toks = &lexed.tokens;
    // Scan back to the statement start.
    let mut start = idx;
    for j in (0..idx).rev() {
        if matches!(toks[j].text.as_str(), ";" | "{" | "}") {
            start = j + 1;
            break;
        }
        start = j;
    }
    let mut j = start;
    while j < idx {
        if toks[j].text == "let" {
            let mut k = j + 1;
            if toks.get(k).is_some_and(|t| t.text == "mut") {
                k += 1;
            }
            let t = toks.get(k)?;
            if t.kind != TokKind::Ident {
                return None;
            }
            // `Some ( g )` / `Ok ( g )` pattern?
            if (t.text == "Some" || t.text == "Ok")
                && toks.get(k + 1).is_some_and(|t| t.text == "(")
            {
                let mut inner = k + 2;
                if toks.get(inner).is_some_and(|t| t.text == "mut") {
                    inner += 1;
                }
                return toks
                    .get(inner)
                    .filter(|t| t.kind == TokKind::Ident)
                    .map(|t| t.text.clone());
            }
            return Some(t.text.clone());
        }
        j += 1;
    }
    None
}

/// Report every edge that participates in a cycle of the cross-function
/// lock-order graph.
pub fn find_cycles(edges: &[LockEdge]) -> Vec<Finding> {
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in edges {
        adj.entry(e.from.as_str())
            .or_default()
            .insert(e.to.as_str());
    }
    let reachable = |from: &str, to: &str| -> bool {
        let mut stack = vec![from];
        let mut seen = BTreeSet::new();
        seen.insert(from);
        while let Some(n) = stack.pop() {
            if n == to {
                return true;
            }
            if let Some(nexts) = adj.get(n) {
                for &next in nexts {
                    if seen.insert(next) {
                        stack.push(next);
                    }
                }
            }
        }
        false
    };
    let mut findings = Vec::new();
    let mut reported: BTreeSet<(String, String)> = BTreeSet::new();
    for e in edges {
        if reachable(&e.to, &e.from) {
            let key = (e.from.clone(), e.to.clone());
            if reported.insert(key) {
                findings.push(Finding {
                    rule: RULE,
                    file: e.file.clone(),
                    line: e.line,
                    message: format!(
                        "lock-order cycle: `{}` is acquired while holding `{}` here, but \
                         another path orders them the other way — pick one order \
                         (potential ABBA deadlock)",
                        e.to, e.from,
                    ),
                });
            }
        }
    }
    findings
}

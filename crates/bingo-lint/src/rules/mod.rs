//! The lint rules. Each module exposes a `check` (or `collect` +
//! aggregate, for the cross-file lock graph) over one lexed file.

pub mod atomics;
pub mod determinism;
pub mod hygiene;
pub mod locks;
pub mod metrics;
pub mod wire;

//! `panic-hygiene` — serving-layer code must not panic casually or write
//! to stdout.
//!
//! `bingo-service`, `bingo-gateway` and `bingo-obs` are the long-running
//! serving layers: a stray `unwrap()` turns a recoverable condition into
//! a worker-thread death (which strands walks — or, in the exposition
//! server, kills the accept loop), and a `println!` corrupts the
//! machine-readable output contract (examples/repro emit JSON on
//! stdout). `expect("<invariant>")` is allowed — it documents why the
//! panic is unreachable — as is anything in test code. Genuine
//! exceptions take `// lint:allow(panic-hygiene): <reason>`.

use crate::lexer::{Lexed, TokKind};
use crate::{crate_of, exempt, Finding};

pub(crate) const RULE: &str = "panic-hygiene";

fn checked(path: &str) -> bool {
    matches!(
        crate_of(path),
        "bingo-service" | "bingo-gateway" | "bingo-obs"
    )
}

pub fn check(path: &str, lexed: &Lexed) -> Vec<Finding> {
    let mut findings = Vec::new();
    if !checked(path) {
        return findings;
    }
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let unwrap = t.text == "unwrap"
            && i >= 1
            && toks[i - 1].text == "."
            && toks.get(i + 1).is_some_and(|t| t.text == "(")
            && toks.get(i + 2).is_some_and(|t| t.text == ")");
        let println = t.text == "println" && toks.get(i + 1).is_some_and(|t| t.text == "!");
        if !(unwrap || println) {
            continue;
        }
        if exempt(lexed, i, RULE) {
            continue;
        }
        findings.push(Finding {
            rule: RULE,
            file: path.to_string(),
            line: t.line,
            message: if unwrap {
                "unwrap() in serving-layer code: handle the error, use \
                 expect(\"<invariant>\") to document unreachability, or justify with \
                 `// lint:allow(panic-hygiene): <reason>`"
                    .to_string()
            } else {
                "println! in serving-layer code: stdout carries the JSON output \
                 contract; use the telemetry registry or return the data"
                    .to_string()
            },
        });
    }
    findings
}

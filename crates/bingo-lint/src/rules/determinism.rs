//! `determinism` — keep nondeterminism out of the walk-producing layers.
//!
//! Bingo's contract is bit-identical walks for a given seed at any thread
//! count. Three classes of leaks are flagged in library crates:
//!
//! 1. **wall-clock reads** — `Instant::now()` / `SystemTime::now()`
//!    anywhere outside the telemetry/bench/example layers (latency
//!    metrics are telemetry's job; a clock read feeding anything else is
//!    a determinism hazard);
//! 2. **entropy-seeded RNG** — `thread_rng`, `from_entropy`, seeding from
//!    a clock or an address (all randomness must flow from the request
//!    seed through SplitMix chains);
//! 3. **unordered-map iteration** — iterating a `HashMap`/`HashSet` into
//!    anything order-sensitive (the iteration order is
//!    randomized-by-hasher in general; this workspace's shim hasher is
//!    deterministic, but the *code* shouldn't rely on that). Iterations
//!    that end in an order-insensitive fold (`sum`, `count`, `min`,
//!    `max`, `any`, `all`, `fold` into a commutative op is NOT assumed)
//!    within the same statement are accepted.

use crate::lexer::{Lexed, TokKind};
use crate::{crate_of, exempt, Finding};
use std::collections::HashSet;

pub(crate) const RULE: &str = "determinism";

/// Layers allowed to read clocks / observe nondeterminism: telemetry
/// (latency histograms are its purpose), the observability plane (the
/// stall watchdog measures wall time by design and never feeds walks),
/// the bench/repro harness, the lint itself (its reports are not walk
/// output), and examples.
fn clock_whitelisted(path: &str) -> bool {
    matches!(
        crate_of(path),
        // criterion IS the bench harness; its whole purpose is timing.
        "bingo-telemetry" | "bingo-obs" | "bingo-bench" | "bingo-lint" | "criterion"
    ) || path.starts_with("examples/")
        || path.contains("/benches/")
}

/// Crates whose map iterations must be order-robust (the deterministic
/// pipeline). Shims count: the rayon shim *is* the determinism story.
fn iteration_checked(path: &str) -> bool {
    path.starts_with("crates/") && !matches!(crate_of(path), "bingo-bench" | "bingo-lint")
        || path.starts_with("shims/")
}

/// Order-insensitive terminal adaptors: a `HashMap` iteration feeding one
/// of these within the same statement is deterministic regardless of
/// iteration order.
const ORDER_INSENSITIVE: &[&str] = &[
    "sum",
    "count",
    "min",
    "max",
    "any",
    "all",
    "len",
    "is_empty",
    "contains",
    "min_by_key",
    "max_by_key",
];

/// Unordered-iteration producers on a hash container.
const ITER_METHODS: &[&str] = &["iter", "iter_mut", "keys", "values", "values_mut", "drain"];

pub fn check(path: &str, lexed: &Lexed) -> Vec<Finding> {
    let mut findings = Vec::new();
    let toks = &lexed.tokens;

    // --- clocks + entropy ---------------------------------------------
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let clock = (t.text == "Instant" || t.text == "SystemTime")
            && toks.get(i + 1).is_some_and(|t| t.text == ":")
            && toks.get(i + 3).is_some_and(|t| t.text == "now");
        if clock && !clock_whitelisted(path) && !exempt(lexed, i, RULE) {
            findings.push(Finding {
                rule: RULE,
                file: path.to_string(),
                line: t.line,
                message: format!(
                    "wall-clock read ({}::now) outside the telemetry/bench layer: walks \
                     must not observe time; move the measurement behind bingo-telemetry \
                     or justify with `// lint:allow(determinism): <reason>`",
                    t.text
                ),
            });
        }
        let entropy = matches!(t.text.as_str(), "thread_rng" | "from_entropy" | "OsRng");
        if entropy && !exempt(lexed, i, RULE) {
            findings.push(Finding {
                rule: RULE,
                file: path.to_string(),
                line: t.line,
                message: format!(
                    "entropy-seeded RNG (`{}`): all randomness must derive from the \
                     request seed via the SplitMix chains",
                    t.text
                ),
            });
        }
    }

    // --- unordered-map iteration --------------------------------------
    if iteration_checked(path) {
        let hash_names = hash_container_names(lexed);
        for i in 0..toks.len() {
            let t = &toks[i];
            if t.kind != TokKind::Ident || !ITER_METHODS.contains(&t.text.as_str()) {
                continue;
            }
            // Shape: <receiver-ident> . method ( — receiver must be a
            // known hash-container binding/field in this file.
            if i < 2 || toks[i - 1].text != "." || toks[i - 2].kind != TokKind::Ident {
                continue;
            }
            if toks.get(i + 1).map(|t| t.text.as_str()) != Some("(") {
                continue;
            }
            if !hash_names.contains(toks[i - 2].text.as_str()) {
                continue;
            }
            if exempt(lexed, i, RULE) {
                continue;
            }
            if statement_is_order_insensitive(lexed, i) {
                continue;
            }
            findings.push(Finding {
                rule: RULE,
                file: path.to_string(),
                line: t.line,
                message: format!(
                    "iteration over hash container `{}` feeds order-sensitive output: \
                     collect-and-sort, switch to BTreeMap, or justify with \
                     `// lint:allow(determinism): <reason>`",
                    toks[i - 2].text
                ),
            });
        }
    }

    findings
}

/// Identifiers declared as `HashMap`/`HashSet` in this file — via
/// `name: HashMap<...>` (field or binding annotation) or
/// `name = HashMap::new()` / `HashMap::with_capacity`.
fn hash_container_names(lexed: &Lexed) -> HashSet<&str> {
    let toks = &lexed.tokens;
    let mut names = HashSet::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || (t.text != "HashMap" && t.text != "HashSet") {
            continue;
        }
        // `name : HashMap` (possibly through `& mut` etc.) — scan back
        // over type sigils to the `:` then take the ident before it.
        let mut j = i;
        while j > 0 && matches!(toks[j - 1].text.as_str(), "&" | "mut" | "<" | "Arc" | "Box") {
            j -= 1;
        }
        if j >= 2 && toks[j - 1].text == ":" && toks[j - 2].kind == TokKind::Ident {
            names.insert(toks[j - 2].text.as_str());
        }
        // `name = HashMap::new(...)`
        if i >= 2 && toks[i - 1].text == "=" && toks[i - 2].kind == TokKind::Ident {
            names.insert(toks[i - 2].text.as_str());
        }
    }
    names
}

/// Whether the statement containing token `idx` ends in an
/// order-insensitive adaptor.
fn statement_is_order_insensitive(lexed: &Lexed, idx: usize) -> bool {
    let toks = &lexed.tokens;
    // Scan forward to the end of the statement (`;` or closing `}` at a
    // shallower depth), looking for `. <adaptor>`.
    let mut depth = 0i32;
    for i in idx..toks.len() {
        match toks[i].text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth < 0 {
                    break;
                }
            }
            ";" if depth == 0 => break,
            _ => {}
        }
        if toks[i].kind == TokKind::Ident
            && ORDER_INSENSITIVE.contains(&toks[i].text.as_str())
            && i > 0
            && toks[i - 1].text == "."
        {
            return true;
        }
    }
    false
}

//! The pluggable walk-model API.
//!
//! Bingo's thesis is that radix-based bias factorization serves *arbitrary*
//! biased walk applications on dynamic graphs — so the walk semantics must
//! not be a closed enum baked into the execution layers. [`WalkModel`] is
//! the open interface: a walk application is a small state machine that,
//! given the walker's [`WalkState`] and a sampling surface, produces one
//! [`Transition`] at a time. Every execution backend in this repository —
//! [`WalkCursor`](crate::WalkCursor) single-stepping, the parallel
//! [`WalkEngine`](crate::WalkEngine), [`WalkStore`](crate::WalkStore)
//! generation, and the sharded `bingo-service` — drives models exclusively
//! through this trait. The legacy [`WalkSpec`](crate::WalkSpec) enum
//! survives only as a thin constructor layer over the built-in models.
//!
//! The trait is **object-safe**: backends hold `Arc<dyn WalkModel>`, so
//! user-defined applications plug in without touching any execution code.
//!
//! ## Cross-shard context
//!
//! Second-order models consult state beyond the current vertex: node2vec's
//! distance factor needs membership queries against the *previous* vertex's
//! adjacency, which in a sharded deployment may be owned by another shard.
//! A model declares this need through
//! [`WalkModel::required_context`]; the sharded service then captures a
//! compact snapshot of the previous vertex's adjacency (a sorted
//! `Vec<VertexId>` fingerprint) on the owning shard *before* forwarding the
//! walker, and the model answers membership queries from the carried
//! snapshot via [`WalkState::prev_adjacent`]. This removes the cross-shard
//! edge-lookup problem that previously forced the service to reject
//! node2vec submissions.
//!
//! ## Writing a custom model
//!
//! A model not in the built-in set — a "temperature-biased" walk whose
//! termination probability rises as the walk cools — in a dozen lines:
//!
//! ```
//! use bingo_walks::model::{
//!     ContextRequirement, StepSampler, Transition, WalkModel, WalkState,
//! };
//! use bingo_walks::WalkCursor;
//! use bingo_core::{BingoConfig, BingoEngine};
//! use bingo_graph::{Bias, DynamicGraph};
//! use bingo_sampling::rng::Pcg64;
//! use rand::{Rng, RngCore, SeedableRng};
//! use std::sync::Arc;
//!
//! /// Terminate with probability `1 - exp(-steps / tau)`: early steps are
//! /// nearly always taken, late steps nearly never.
//! #[derive(Debug)]
//! struct TemperatureWalk {
//!     tau: f64,
//!     max_steps: usize,
//! }
//!
//! impl WalkModel for TemperatureWalk {
//!     fn name(&self) -> &str {
//!         "temperature"
//!     }
//!     fn expected_length(&self) -> usize {
//!         self.tau.ceil() as usize
//!     }
//!     fn max_steps(&self) -> usize {
//!         self.max_steps
//!     }
//!     fn required_context(&self) -> ContextRequirement {
//!         ContextRequirement::None // first-order: nothing to carry
//!     }
//!     fn step(
//!         &self,
//!         state: &WalkState,
//!         sampler: &dyn StepSampler,
//!         rng: &mut dyn RngCore,
//!     ) -> Transition {
//!         if state.steps_taken() >= self.max_steps {
//!             return Transition::Terminate;
//!         }
//!         let survive = (-(state.steps_taken() as f64) / self.tau).exp();
//!         if rng.gen::<f64>() >= survive {
//!             return Transition::Terminate;
//!         }
//!         match sampler.sample_neighbor_dyn(state.current(), rng) {
//!             Some(next) => Transition::Step(next),
//!             None => Transition::Terminate,
//!         }
//!     }
//! }
//!
//! // Drive it exactly like a built-in application.
//! let mut graph = DynamicGraph::new(8);
//! for v in 0..8u32 {
//!     graph.insert_edge(v, (v + 1) % 8, Bias::from_int(1)).unwrap();
//! }
//! let engine = BingoEngine::build(&graph, BingoConfig::default()).unwrap();
//! let model: Arc<dyn WalkModel> = Arc::new(TemperatureWalk { tau: 4.0, max_steps: 32 });
//! let mut rng = Pcg64::seed_from_u64(7);
//! let mut cursor = WalkCursor::with_model(model, 0);
//! while cursor.step(&engine, &mut rng).is_some() {}
//! assert!(cursor.path().len() <= 33);
//! ```

use crate::TransitionSampler;
use bingo_graph::VertexId;
use rand::RngCore;
use std::sync::Arc;

/// Cross-shard state a model needs alongside a forwarded walker.
///
/// Declared once per model through [`WalkModel::required_context`]; the
/// sharded service inspects it when a walker crosses an ownership boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContextRequirement {
    /// The model only reads the walker's current vertex: nothing beyond the
    /// cursor itself has to travel with a forwarded walker.
    None,
    /// The model issues membership queries against the *previous* vertex's
    /// out-adjacency (second-order applications such as node2vec). The
    /// forwarding shard must attach a sorted adjacency fingerprint of the
    /// previous vertex ([`WalkState::carried_context`]) because the
    /// receiving shard does not own that vertex's edges.
    PreviousAdjacency,
}

/// The outcome of asking a model for one step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transition {
    /// Move the walker to this vertex.
    Step(VertexId),
    /// The walk is over (target length, dead end, or probabilistic stop).
    Terminate,
}

/// A sorted out-adjacency snapshot of one vertex, captured by the shard
/// that owns it and carried with a forwarded walker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CarriedContext {
    /// The vertex whose adjacency was snapshotted.
    pub vertex: VertexId,
    /// The vertex's out-neighbors, sorted ascending and deduplicated — a
    /// fingerprint supporting `O(log d)` membership queries.
    pub adjacency: Vec<VertexId>,
}

impl CarriedContext {
    /// Approximate wire size of this snapshot in bytes.
    pub fn byte_len(&self) -> usize {
        std::mem::size_of::<VertexId>() * (self.adjacency.len() + 1)
    }
}

/// Walker-private state visible to a [`WalkModel`] at every step.
///
/// The executing cursor owns and advances this state; models only read it.
/// It deliberately excludes the visited path — models that need history
/// beyond `prev` should not exist in a forwardable walker (the path lives
/// with the cursor, not on the wire).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalkState {
    current: VertexId,
    prev: Option<VertexId>,
    steps_taken: usize,
    carried: Option<CarriedContext>,
}

impl WalkState {
    /// Fresh state positioned at `start` with no steps taken.
    pub fn new(start: VertexId) -> Self {
        WalkState {
            current: start,
            prev: None,
            steps_taken: 0,
            carried: None,
        }
    }

    /// The walker's current vertex.
    #[inline]
    pub fn current(&self) -> VertexId {
        self.current
    }

    /// The vertex the walker stepped from, `None` before the first step.
    #[inline]
    pub fn prev(&self) -> Option<VertexId> {
        self.prev
    }

    /// Steps taken so far.
    #[inline]
    pub fn steps_taken(&self) -> usize {
        self.steps_taken
    }

    /// The carried cross-shard context, if a forwarding shard attached one.
    pub fn carried_context(&self) -> Option<&CarriedContext> {
        self.carried.as_ref()
    }

    /// Whether the edge `prev → candidate` exists, answered from the
    /// carried adjacency snapshot when present (the sharded case — the
    /// local sampler does not own `prev`) and from `sampler` otherwise.
    ///
    /// Returns `false` when the walk has no previous vertex yet.
    pub fn prev_adjacent(&self, candidate: VertexId, sampler: &dyn StepSampler) -> bool {
        let Some(prev) = self.prev else {
            return false;
        };
        match &self.carried {
            Some(ctx) if ctx.vertex == prev => ctx.adjacency.binary_search(&candidate).is_ok(),
            _ => sampler.has_edge(prev, candidate),
        }
    }

    /// Record one taken transition: `prev ← current`, `current ← next`.
    /// Any carried context is dropped — after a locally-sampled step the
    /// previous vertex is owned by the stepping shard again.
    pub(crate) fn advance(&mut self, next: VertexId) {
        self.prev = Some(self.current);
        self.current = next;
        self.steps_taken += 1;
        self.carried = None;
    }

    /// Attach a forwarded-context snapshot (used by the sharded service
    /// right before handing the walker to another shard).
    pub(crate) fn set_carried(&mut self, ctx: CarriedContext) {
        self.carried = Some(ctx);
    }
}

/// Object-safe sampling surface handed to [`WalkModel::step`].
///
/// This is [`TransitionSampler`] with the generic RNG parameter erased so
/// that `dyn WalkModel` stays a valid type; every `TransitionSampler`
/// implements it automatically.
pub trait StepSampler {
    /// Number of vertices in the graph.
    fn num_vertices(&self) -> usize;

    /// Out-degree of `v`.
    fn degree(&self, v: VertexId) -> usize;

    /// Sample one out-neighbor of `v` proportionally to the edge biases.
    fn sample_neighbor_dyn(&self, v: VertexId, rng: &mut dyn RngCore) -> Option<VertexId>;

    /// Whether the edge `(src, dst)` exists *in this sampler's view* — a
    /// range-sharded engine answers `false` for vertices it does not own,
    /// which is exactly why second-order models route membership through
    /// [`WalkState::prev_adjacent`] instead of calling this directly.
    fn has_edge(&self, src: VertexId, dst: VertexId) -> bool;
}

impl<S: TransitionSampler + ?Sized> StepSampler for S {
    fn num_vertices(&self) -> usize {
        TransitionSampler::num_vertices(self)
    }

    fn degree(&self, v: VertexId) -> usize {
        TransitionSampler::degree(self, v)
    }

    #[inline]
    fn sample_neighbor_dyn(&self, v: VertexId, mut rng: &mut dyn RngCore) -> Option<VertexId> {
        TransitionSampler::sample_neighbor(self, v, &mut rng)
    }

    fn has_edge(&self, src: VertexId, dst: VertexId) -> bool {
        TransitionSampler::has_edge(self, src, dst)
    }
}

/// Sized adapter over a (possibly unsized) [`TransitionSampler`] reference,
/// so the execution layers can hand `&dyn StepSampler` to a model even when
/// their sampler generic is `?Sized`.
pub struct SamplerBridge<'a, S: TransitionSampler + ?Sized>(pub &'a S);

impl<S: TransitionSampler + ?Sized> StepSampler for SamplerBridge<'_, S> {
    fn num_vertices(&self) -> usize {
        TransitionSampler::num_vertices(self.0)
    }

    fn degree(&self, v: VertexId) -> usize {
        TransitionSampler::degree(self.0, v)
    }

    #[inline]
    fn sample_neighbor_dyn(&self, v: VertexId, mut rng: &mut dyn RngCore) -> Option<VertexId> {
        TransitionSampler::sample_neighbor(self.0, v, &mut rng)
    }

    fn has_edge(&self, src: VertexId, dst: VertexId) -> bool {
        TransitionSampler::has_edge(self.0, src, dst)
    }
}

/// A pluggable walk application: per-walk state initialisation plus a
/// one-transition step function.
///
/// Implementations must be cheap to share (`Send + Sync`; backends clone an
/// `Arc<dyn WalkModel>` per walker) and deterministic given the RNG stream:
/// all randomness must come from the `rng` argument, in a fixed draw order,
/// so a walk is reproducible for a seed regardless of which backend drives
/// it.
pub trait WalkModel: Send + Sync + std::fmt::Debug {
    /// Short human-readable application name used in reports.
    fn name(&self) -> &str;

    /// Expected (or exact) number of steps per walk, used for sizing.
    fn expected_length(&self) -> usize;

    /// Hard deterministic cap on the number of steps a walk can take.
    /// Unlike [`expected_length`](WalkModel::expected_length) this is
    /// always finite; schedulers use it to finish walkers without drawing
    /// randomness ([`WalkCursor::at_length_limit`](crate::WalkCursor::at_length_limit)).
    fn max_steps(&self) -> usize;

    /// What cross-shard state this model needs carried with a forwarded
    /// walker. Defaults to [`ContextRequirement::None`].
    fn required_context(&self) -> ContextRequirement {
        ContextRequirement::None
    }

    /// Create the walker state for a walk starting at `start`.
    fn init(&self, start: VertexId) -> WalkState {
        WalkState::new(start)
    }

    /// Produce the next transition for a walker in `state`.
    ///
    /// The executor applies a returned [`Transition::Step`] to the state
    /// (and the path); the model never mutates state itself. A model that
    /// has reached its termination condition must return
    /// [`Transition::Terminate`] *without* drawing randomness when the
    /// condition is deterministic (length caps), so that finished walks
    /// stay reproducible under schedulers that probe for completion.
    fn step(
        &self,
        state: &WalkState,
        sampler: &dyn StepSampler,
        rng: &mut dyn RngCore,
    ) -> Transition;
}

/// A shareable, type-erased walk model — what every backend stores.
pub type SharedWalkModel = Arc<dyn WalkModel>;

// ---------------------------------------------------------------------------
// Built-in models
// ---------------------------------------------------------------------------

use crate::apps::{DeepWalkConfig, Node2VecConfig, PprConfig, SimpleSamplingConfig};
use rand::Rng;

/// Biased DeepWalk: first-order, fixed length, one biased sample per step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeepWalkModel {
    /// The application parameters.
    pub config: DeepWalkConfig,
}

impl WalkModel for DeepWalkModel {
    fn name(&self) -> &str {
        "DeepWalk"
    }

    fn expected_length(&self) -> usize {
        self.config.walk_length
    }

    fn max_steps(&self) -> usize {
        self.config.walk_length
    }

    fn step(
        &self,
        state: &WalkState,
        sampler: &dyn StepSampler,
        rng: &mut dyn RngCore,
    ) -> Transition {
        if state.steps_taken() >= self.config.walk_length {
            return Transition::Terminate;
        }
        match sampler.sample_neighbor_dyn(state.current(), rng) {
            Some(next) => Transition::Step(next),
            None => Transition::Terminate,
        }
    }
}

/// Unbiased simple sampling — evaluated on unit-bias graphs, where the
/// biased sampler and the uniform sampler coincide (§6's
/// `random_walk_simple_sampling` kernel).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimpleSamplingModel {
    /// The application parameters.
    pub config: SimpleSamplingConfig,
}

impl WalkModel for SimpleSamplingModel {
    fn name(&self) -> &str {
        "SimpleSampling"
    }

    fn expected_length(&self) -> usize {
        self.config.walk_length
    }

    fn max_steps(&self) -> usize {
        self.config.walk_length
    }

    fn step(
        &self,
        state: &WalkState,
        sampler: &dyn StepSampler,
        rng: &mut dyn RngCore,
    ) -> Transition {
        if state.steps_taken() >= self.config.walk_length {
            return Transition::Terminate;
        }
        match sampler.sample_neighbor_dyn(state.current(), rng) {
            Some(next) => Transition::Step(next),
            None => Transition::Terminate,
        }
    }
}

/// Personalized PageRank: terminate with a fixed probability at every step,
/// hard-capped at `max_length`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PprModel {
    /// The application parameters.
    pub config: PprConfig,
}

impl WalkModel for PprModel {
    fn name(&self) -> &str {
        "PPR"
    }

    fn expected_length(&self) -> usize {
        (1.0 / self.config.stop_probability).round() as usize
    }

    fn max_steps(&self) -> usize {
        self.config.max_length
    }

    fn step(
        &self,
        state: &WalkState,
        sampler: &dyn StepSampler,
        rng: &mut dyn RngCore,
    ) -> Transition {
        if state.steps_taken() >= self.config.max_length
            || rng.gen::<f64>() < self.config.stop_probability
        {
            return Transition::Terminate;
        }
        match sampler.sample_neighbor_dyn(state.current(), rng) {
            Some(next) => Transition::Step(next),
            None => Transition::Terminate,
        }
    }
}

/// node2vec: second-order walks. The transition bias is additionally
/// multiplied by `1/p`, `1` or `1/q` depending on whether the candidate is
/// the previous vertex, an out-neighbor of the previous vertex, or neither
/// (Equation 1). Following KnightKing (and the paper, which adopts
/// KnightKing's approach for second-order applications), the factor is
/// applied by rejection: sample from the static bias distribution, accept
/// with probability `f / max(f)`.
///
/// The distance factor is evaluated on the **directed out-adjacency of the
/// previous vertex** (`prev → candidate`), so a single membership
/// fingerprint of `prev` fully determines the factor — which is what lets
/// the sharded service forward node2vec walkers with a compact carried
/// context and still reproduce the single-engine transition distribution
/// exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Node2VecModel {
    /// The application parameters.
    pub config: Node2VecConfig,
}

impl WalkModel for Node2VecModel {
    fn name(&self) -> &str {
        "node2vec"
    }

    fn expected_length(&self) -> usize {
        self.config.walk_length
    }

    fn max_steps(&self) -> usize {
        self.config.walk_length
    }

    fn required_context(&self) -> ContextRequirement {
        ContextRequirement::PreviousAdjacency
    }

    fn step(
        &self,
        state: &WalkState,
        sampler: &dyn StepSampler,
        mut rng: &mut dyn RngCore,
    ) -> Transition {
        if state.steps_taken() >= self.config.walk_length {
            return Transition::Terminate;
        }
        let current = state.current();
        let Some(prev) = state.prev() else {
            // The first step has no history: plain biased sampling.
            return match sampler.sample_neighbor_dyn(current, rng) {
                Some(next) => Transition::Step(next),
                None => Transition::Terminate,
            };
        };
        let inv_p = 1.0 / self.config.p;
        let inv_q = 1.0 / self.config.q;
        let max_factor = inv_p.max(1.0).max(inv_q);
        // Expected number of trials is bounded by max_factor / min_factor;
        // cap defensively to avoid pathological loops on adversarial
        // parameters.
        for _ in 0..10_000 {
            let Some(candidate) = sampler.sample_neighbor_dyn(current, &mut rng) else {
                return Transition::Terminate;
            };
            let factor = if candidate == prev {
                inv_p
            } else if state.prev_adjacent(candidate, sampler) {
                1.0
            } else {
                inv_q
            };
            if rng.gen::<f64>() * max_factor < factor {
                return Transition::Step(candidate);
            }
        }
        Transition::Terminate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bingo_sampling::rng::Pcg64;
    use rand::SeedableRng;

    /// A fixed fan-out sampler for exercising models without an engine.
    #[derive(Debug)]
    struct FanSampler {
        n: usize,
        edges: Vec<(VertexId, VertexId)>,
    }

    impl TransitionSampler for FanSampler {
        fn num_vertices(&self) -> usize {
            self.n
        }
        fn degree(&self, v: VertexId) -> usize {
            self.edges.iter().filter(|&&(s, _)| s == v).count()
        }
        fn sample_neighbor<R: Rng + ?Sized>(&self, v: VertexId, rng: &mut R) -> Option<VertexId> {
            let out: Vec<VertexId> = self
                .edges
                .iter()
                .filter(|&&(s, _)| s == v)
                .map(|&(_, d)| d)
                .collect();
            if out.is_empty() {
                None
            } else {
                Some(out[rng.gen_range(0..out.len())])
            }
        }
        fn has_edge(&self, src: VertexId, dst: VertexId) -> bool {
            self.edges.contains(&(src, dst))
        }
        fn edge_bias(&self, src: VertexId, dst: VertexId) -> Option<f64> {
            TransitionSampler::has_edge(self, src, dst).then_some(1.0)
        }
    }

    fn fan() -> FanSampler {
        FanSampler {
            n: 5,
            edges: vec![(0, 1), (1, 2), (1, 0), (2, 3), (3, 4), (4, 0)],
        }
    }

    #[test]
    fn deepwalk_model_terminates_at_length() {
        let model = DeepWalkModel {
            config: DeepWalkConfig { walk_length: 0 },
        };
        let mut rng = Pcg64::seed_from_u64(1);
        let state = WalkState::new(0);
        assert_eq!(
            model.step(&state, &fan(), &mut rng),
            Transition::Terminate,
            "length-0 walk takes no step and draws no randomness"
        );
    }

    #[test]
    fn state_advance_tracks_prev_and_drops_context() {
        let mut state = WalkState::new(3);
        state.set_carried(CarriedContext {
            vertex: 3,
            adjacency: vec![1, 4],
        });
        assert!(state.carried_context().is_some());
        state.advance(4);
        assert_eq!(state.current(), 4);
        assert_eq!(state.prev(), Some(3));
        assert_eq!(state.steps_taken(), 1);
        assert!(
            state.carried_context().is_none(),
            "carried context is single-use"
        );
    }

    #[test]
    fn prev_adjacent_prefers_carried_snapshot_over_sampler() {
        let sampler = fan();
        let mut state = WalkState::new(1);
        state.advance(2); // prev = 1
                          // Without a snapshot the sampler answers: 1 → 0 exists.
        assert!(state.prev_adjacent(0, &sampler));
        assert!(!state.prev_adjacent(3, &sampler));
        // A snapshot claiming a different adjacency wins (the sharded case,
        // where the local sampler does not own prev and would answer false).
        state.set_carried(CarriedContext {
            vertex: 1,
            adjacency: vec![3],
        });
        assert!(state.prev_adjacent(3, &sampler));
        assert!(!state.prev_adjacent(0, &sampler));
    }

    #[test]
    fn node2vec_model_declares_previous_adjacency_context() {
        let n2v = Node2VecModel {
            config: Node2VecConfig::default(),
        };
        assert_eq!(
            n2v.required_context(),
            ContextRequirement::PreviousAdjacency
        );
        let dw = DeepWalkModel {
            config: DeepWalkConfig::default(),
        };
        assert_eq!(dw.required_context(), ContextRequirement::None);
    }

    #[test]
    fn models_are_object_safe_and_usable_boxed() {
        let models: Vec<Box<dyn WalkModel>> = vec![
            Box::new(DeepWalkModel {
                config: DeepWalkConfig { walk_length: 3 },
            }),
            Box::new(Node2VecModel {
                config: Node2VecConfig::default(),
            }),
            Box::new(PprModel {
                config: PprConfig::default(),
            }),
            Box::new(SimpleSamplingModel {
                config: SimpleSamplingConfig { walk_length: 3 },
            }),
        ];
        let sampler = fan();
        let mut rng = Pcg64::seed_from_u64(9);
        for model in &models {
            let state = model.init(0);
            assert_eq!(state.current(), 0);
            // One step through the erased surface must produce a transition.
            let t = model.step(&state, &sampler, &mut rng);
            match t {
                Transition::Step(v) => assert!(TransitionSampler::has_edge(&sampler, 0, v)),
                Transition::Terminate => {}
            }
            assert!(!model.name().is_empty());
            assert!(model.max_steps() > 0);
        }
    }

    #[test]
    fn carried_context_byte_len_counts_vertex_and_adjacency() {
        let ctx = CarriedContext {
            vertex: 7,
            adjacency: vec![1, 2, 3],
        };
        assert_eq!(ctx.byte_len(), 4 * std::mem::size_of::<VertexId>());
    }
}

//! The pluggable walk-model API.
//!
//! Bingo's thesis is that radix-based bias factorization serves *arbitrary*
//! biased walk applications on dynamic graphs — so the walk semantics must
//! not be a closed enum baked into the execution layers. [`WalkModel`] is
//! the open interface: a walk application is a small state machine that,
//! given the walker's [`WalkState`] and a sampling surface, produces one
//! [`Transition`] at a time. Every execution backend in this repository —
//! [`WalkCursor`](crate::WalkCursor) single-stepping, the parallel
//! [`WalkEngine`](crate::WalkEngine), [`WalkStore`](crate::WalkStore)
//! generation, and the sharded `bingo-service` — drives models exclusively
//! through this trait. The legacy [`WalkSpec`](crate::WalkSpec) enum
//! survives only as a thin constructor layer over the built-in models.
//!
//! The trait is **object-safe**: backends hold `Arc<dyn WalkModel>`, so
//! user-defined applications plug in without touching any execution code.
//!
//! ## Cross-shard context
//!
//! Second-order models consult state beyond the current vertex: node2vec's
//! distance factor needs membership queries against the *previous* vertex's
//! adjacency, which in a sharded deployment may be owned by another shard.
//! A model declares this need through
//! [`WalkModel::required_context`]; the sharded service then captures a
//! compact membership snapshot of the previous vertex's adjacency on the
//! owning shard *before* forwarding the walker, and the model answers
//! membership queries from the carried snapshot via
//! [`WalkState::prev_adjacent`]. This removes the cross-shard edge-lookup
//! problem that previously forced the service to reject node2vec
//! submissions.
//!
//! ### Carried-context wire formats
//!
//! A [`CarriedContext`] is the pair `(vertex, membership)` where the
//! membership structure is one of three versioned representations
//! ([`ContextSnapshot`]), all queried through the [`ContextMembership`]
//! trait:
//!
//! | version | variant | exact? | payload |
//! |--------:|---------|--------|---------|
//! | 1 | [`ContextSnapshot::Exact`] | yes | the sorted, deduplicated out-neighbor ids as raw `VertexId`s (4 bytes each) — PR-2's original format |
//! | 2 | [`ContextSnapshot::Delta`] | yes | LEB128 varints of the gaps between consecutive sorted ids ([`DeltaFingerprint`]); ~4–8× smaller on clustered id ranges, identical membership answers |
//! | 3 | [`ContextSnapshot::Bloom`] | **no** | a Bloom filter ([`BloomFingerprint`]) sized at a configured bits-per-key; no false negatives, but a tunable false-*positive* rate |
//!
//! The wire envelope is one version byte plus the 4-byte snapshot vertex id
//! plus a 4-byte payload length, followed by the payload
//! ([`CarriedContext::byte_len`] counts all of it). Encodings are selected
//! by [`ContextEncoding`] (a deployment knob, not a per-walker one);
//! [`ContextEncoding::Exact`] is the default so sharded and single-engine
//! runs answer membership queries *identically*. `Delta` is also exact —
//! it changes only the byte size. `Bloom` is opt-in because a false
//! positive makes node2vec misclassify a distance-2 candidate as
//! distance 1 with probability ≈ the filter's false-positive rate, which
//! slightly biases the transition distribution (analytic chi-square
//! equivalence holds only for the exact representations).
//!
//! ### Wire-format specification
//!
//! All integers are **fixed-width little-endian**; nothing on the wire is
//! `usize` or otherwise platform-dependent, and every count is explicit so
//! a decoder never trusts container iteration order. The codecs live in
//! [`crate::wire`]; `byte_len()` here reports *exactly* the number of
//! bytes [`crate::wire::encode_context`] emits.
//!
//! Context envelope (every version, [`CONTEXT_ENVELOPE_BYTES`] = 9):
//!
//! | offset | size | field |
//! |-------:|-----:|-------|
//! | 0 | 1 | wire version (1 = exact, 2 = delta, 3 = Bloom) |
//! | 1 | 4 | snapshot vertex id (`u32` LE) |
//! | 5 | 4 | payload length in bytes (`u32` LE) |
//! | 9 | n | version-specific payload |
//!
//! Payloads:
//!
//! * **v1 exact** — the sorted, strictly increasing neighbor ids, each a
//!   `u32` LE (payload length is `4 × entries`; the count is implied).
//! * **v2 delta** — a `u32` LE entry count, then the LEB128 varint gap
//!   stream ([`DeltaFingerprint`]): first varint is the first id, each
//!   subsequent varint a strictly positive gap.
//! * **v3 Bloom** — a `u32` LE entry count, a `u8` probe-hash count
//!   (1–16), a `u32` LE filter word count, then that many `u64` LE filter
//!   words ([`BloomFingerprint`]; the filter has `64 × words` bits).
//!
//! Walker frames (the whole forwarded walker, version-prefixed the same
//! way) and the 16-byte snapshot *handle* that replaces a payload when the
//! receiver already caches the snapshot are specified in [`crate::wire`].
//!
//! ### Missing-context faults
//!
//! When a second-order model queries [`WalkState::prev_adjacent`] and no
//! valid snapshot is carried, the query falls back to the local sampler.
//! On a whole-graph sampler this is the correct answer; on a range-sharded
//! sampler that does **not** own the previous vertex it would silently
//! answer "no edge" and skew node2vec's distance factor. That condition is
//! a *capture fault* (the forwarding shard failed to attach context), so
//! `prev_adjacent` detects it via [`StepSampler::owns_vertex`] and counts
//! it ([`WalkState::take_context_misses`]); the sharded service drains the
//! counter into its per-shard `context_misses` statistic and
//! `debug_assert!`s that it stays zero, so a capture failure is loud in
//! tests instead of a quiet distribution skew.
//!
//! ## Writing a custom model
//!
//! A model not in the built-in set — a "temperature-biased" walk whose
//! termination probability rises as the walk cools — in a dozen lines:
//!
//! ```
//! use bingo_walks::model::{
//!     ContextRequirement, StepSampler, Transition, WalkModel, WalkState,
//! };
//! use bingo_walks::WalkCursor;
//! use bingo_core::{BingoConfig, BingoEngine};
//! use bingo_graph::{Bias, DynamicGraph};
//! use bingo_sampling::rng::Pcg64;
//! use rand::{Rng, RngCore, SeedableRng};
//! use std::sync::Arc;
//!
//! /// Terminate with probability `1 - exp(-steps / tau)`: early steps are
//! /// nearly always taken, late steps nearly never.
//! #[derive(Debug)]
//! struct TemperatureWalk {
//!     tau: f64,
//!     max_steps: usize,
//! }
//!
//! impl WalkModel for TemperatureWalk {
//!     fn name(&self) -> &str {
//!         "temperature"
//!     }
//!     fn expected_length(&self) -> usize {
//!         self.tau.ceil() as usize
//!     }
//!     fn max_steps(&self) -> usize {
//!         self.max_steps
//!     }
//!     fn required_context(&self) -> ContextRequirement {
//!         ContextRequirement::None // first-order: nothing to carry
//!     }
//!     fn step(
//!         &self,
//!         state: &WalkState,
//!         sampler: &dyn StepSampler,
//!         rng: &mut dyn RngCore,
//!     ) -> Transition {
//!         if state.steps_taken() >= self.max_steps {
//!             return Transition::Terminate;
//!         }
//!         let survive = (-(state.steps_taken() as f64) / self.tau).exp();
//!         if rng.gen::<f64>() >= survive {
//!             return Transition::Terminate;
//!         }
//!         match sampler.sample_neighbor_dyn(state.current(), rng) {
//!             Some(next) => Transition::Step(next),
//!             None => Transition::Terminate,
//!         }
//!     }
//! }
//!
//! // Drive it exactly like a built-in application.
//! let mut graph = DynamicGraph::new(8);
//! for v in 0..8u32 {
//!     graph.insert_edge(v, (v + 1) % 8, Bias::from_int(1)).unwrap();
//! }
//! let engine = BingoEngine::build(&graph, BingoConfig::default()).unwrap();
//! let model: Arc<dyn WalkModel> = Arc::new(TemperatureWalk { tau: 4.0, max_steps: 32 });
//! let mut rng = Pcg64::seed_from_u64(7);
//! let mut cursor = WalkCursor::with_model(model, 0);
//! while cursor.step(&engine, &mut rng).is_some() {}
//! assert!(cursor.path().len() <= 33);
//! ```

use crate::TransitionSampler;
use bingo_graph::VertexId;
use bingo_sampling::rng::SplitMix64;
use rand::RngCore;
use std::cell::Cell;
use std::sync::Arc;

/// Cross-shard state a model needs alongside a forwarded walker.
///
/// Declared once per model through [`WalkModel::required_context`]; the
/// sharded service inspects it when a walker crosses an ownership boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContextRequirement {
    /// The model only reads the walker's current vertex: nothing beyond the
    /// cursor itself has to travel with a forwarded walker.
    None,
    /// The model issues membership queries against the *previous* vertex's
    /// out-adjacency (second-order applications such as node2vec). The
    /// forwarding shard must attach a sorted adjacency fingerprint of the
    /// previous vertex ([`WalkState::carried_context`]) because the
    /// receiving shard does not own that vertex's edges.
    PreviousAdjacency,
}

/// The outcome of asking a model for one step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transition {
    /// Move the walker to this vertex.
    Step(VertexId),
    /// The walk is over (target length, dead end, or probabilistic stop).
    Terminate,
}

/// How a forwarded-context membership snapshot is encoded on the wire.
///
/// A deployment-level knob (the sharded service reads it from its config):
/// every snapshot captured by a service uses the same encoding, so the
/// receiving side never has to negotiate. See the module docs for the
/// format table and the exactness caveats.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ContextEncoding {
    /// Version 1: the sorted adjacency ids verbatim (exact, the default).
    #[default]
    Exact,
    /// Version 2: delta-encoded LEB128 varints over the sorted ids (exact,
    /// ~4–8× smaller on clustered id ranges).
    Delta,
    /// Version 3: a Bloom filter with the given bits-per-key budget
    /// (approximate — false positives at roughly `0.6185^bits_per_key`;
    /// never false negatives). Opt-in: it trades a small distribution bias
    /// in second-order models for the smallest wire size.
    Bloom {
        /// Filter bits budgeted per adjacency entry (clamped to ≥ 1;
        /// 10 gives ≈ 1% false positives).
        bits_per_key: u8,
    },
}

impl ContextEncoding {
    /// Encode `adjacency` (the sorted, deduplicated out-neighbors of
    /// `vertex`, shared behind an `Arc` so hot snapshots are reused without
    /// copying) into a carried context in this encoding.
    pub fn encode(&self, vertex: VertexId, adjacency: Arc<Vec<VertexId>>) -> CarriedContext {
        let membership = match *self {
            ContextEncoding::Exact => ContextSnapshot::Exact(adjacency),
            ContextEncoding::Delta => {
                ContextSnapshot::Delta(Arc::new(DeltaFingerprint::encode(&adjacency)))
            }
            ContextEncoding::Bloom { bits_per_key } => {
                ContextSnapshot::Bloom(Arc::new(BloomFingerprint::build(&adjacency, bits_per_key)))
            }
        };
        CarriedContext { vertex, membership }
    }
}

/// Membership-query surface shared by every carried-context representation.
///
/// [`WalkState::prev_adjacent`] answers second-order membership through
/// this trait, so models are agnostic to which wire format travelled with
/// the walker.
pub trait ContextMembership {
    /// Whether `candidate` is (possibly: for approximate representations)
    /// a member of the snapshotted adjacency.
    fn contains(&self, candidate: VertexId) -> bool;

    /// Payload wire size in bytes (excluding the shared envelope).
    fn byte_len(&self) -> usize;

    /// Number of adjacency entries the snapshot represents.
    fn len(&self) -> usize;

    /// Whether the snapshot is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `false` for representations that can return false positives.
    fn is_exact(&self) -> bool;

    /// Wire-format version tag (1 = exact, 2 = delta, 3 = Bloom).
    fn wire_version(&self) -> u8;
}

impl ContextMembership for Vec<VertexId> {
    fn contains(&self, candidate: VertexId) -> bool {
        self.binary_search(&candidate).is_ok()
    }

    fn byte_len(&self) -> usize {
        std::mem::size_of::<VertexId>() * self.len()
    }

    fn len(&self) -> usize {
        Vec::len(self)
    }

    fn is_exact(&self) -> bool {
        true
    }

    fn wire_version(&self) -> u8 {
        1
    }
}

/// Version-2 membership payload: the gaps between consecutive sorted ids,
/// LEB128-varint encoded. Exact (decodes back to the original fingerprint);
/// membership is a linear decode with early exit, `O(d)` worst case —
/// acceptable because node2vec issues a handful of queries per step and the
/// decode touches ~1 byte per neighbor on clustered graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaFingerprint {
    bytes: Vec<u8>,
    len: usize,
}

impl DeltaFingerprint {
    /// Delta-encode a sorted, deduplicated id slice.
    pub fn encode(sorted: &[VertexId]) -> Self {
        debug_assert!(
            sorted.windows(2).all(|w| w[0] < w[1]),
            "input sorted+deduped"
        );
        let mut bytes = Vec::with_capacity(sorted.len() + sorted.len() / 2);
        let mut prev = 0u32;
        for (i, &v) in sorted.iter().enumerate() {
            // First entry stores the id itself; the rest store strictly
            // positive gaps.
            let mut gap = if i == 0 { v } else { v - prev };
            prev = v;
            loop {
                let byte = (gap & 0x7F) as u8;
                gap >>= 7;
                if gap == 0 {
                    bytes.push(byte);
                    break;
                }
                bytes.push(byte | 0x80);
            }
        }
        DeltaFingerprint {
            bytes,
            len: sorted.len(),
        }
    }

    /// Iterate the decoded ids in ascending order.
    fn iter(&self) -> impl Iterator<Item = VertexId> + '_ {
        let mut pos = 0usize;
        let mut prev = 0u32;
        let mut first = true;
        std::iter::from_fn(move || {
            if pos >= self.bytes.len() {
                return None;
            }
            let mut gap = 0u32;
            let mut shift = 0u32;
            loop {
                let byte = self.bytes[pos];
                pos += 1;
                gap |= u32::from(byte & 0x7F) << shift;
                if byte & 0x80 == 0 {
                    break;
                }
                shift += 7;
            }
            prev = if first { gap } else { prev + gap };
            first = false;
            Some(prev)
        })
    }

    /// Decode back to the sorted id vector (tests, trace recording).
    pub fn decode(&self) -> Vec<VertexId> {
        self.iter().collect()
    }

    /// The raw varint gap stream and entry count, for the wire codec.
    pub fn wire_parts(&self) -> (&[u8], usize) {
        (&self.bytes, self.len)
    }

    /// Rebuild a fingerprint from wire parts, validating that the varint
    /// stream is well-formed: exactly `len` entries, strictly increasing,
    /// every value within `u32`, no trailing bytes. Returns `None` on any
    /// violation, so corrupted wire bytes can never panic a membership
    /// query.
    pub fn from_wire_parts(bytes: Vec<u8>, len: usize) -> Option<Self> {
        let mut pos = 0usize;
        let mut prev = 0u32;
        let mut decoded = 0usize;
        while pos < bytes.len() {
            let mut gap: u64 = 0;
            let mut shift = 0u32;
            loop {
                let byte = *bytes.get(pos)?;
                pos += 1;
                if shift >= 32 && byte & 0x7F != 0 {
                    return None; // value overflows u32
                }
                gap |= u64::from(byte & 0x7F) << shift.min(63);
                if byte & 0x80 == 0 {
                    break;
                }
                shift += 7;
                if shift > 63 {
                    return None; // runaway continuation bits
                }
            }
            let gap = u32::try_from(gap).ok()?;
            if decoded > 0 && gap == 0 {
                return None; // duplicate (gaps must be strictly positive)
            }
            prev = if decoded == 0 {
                gap
            } else {
                prev.checked_add(gap)?
            };
            decoded += 1;
        }
        if decoded != len {
            return None;
        }
        Some(DeltaFingerprint { bytes, len })
    }
}

impl ContextMembership for DeltaFingerprint {
    fn contains(&self, candidate: VertexId) -> bool {
        for v in self.iter() {
            if v == candidate {
                return true;
            }
            if v > candidate {
                return false;
            }
        }
        false
    }

    fn byte_len(&self) -> usize {
        // u32 entry-count prefix + the varint gap stream (see the
        // wire-format spec in the module docs).
        std::mem::size_of::<u32>() + self.bytes.len()
    }

    fn len(&self) -> usize {
        self.len
    }

    fn is_exact(&self) -> bool {
        true
    }

    fn wire_version(&self) -> u8 {
        2
    }
}

/// Version-3 membership payload: a Bloom filter over the adjacency ids with
/// SplitMix64 double hashing. No false negatives; false positives at
/// roughly `0.6185^bits_per_key`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BloomFingerprint {
    bits: Vec<u64>,
    num_bits: u64,
    hashes: u32,
    len: usize,
}

impl BloomFingerprint {
    /// Build a filter over `items` with `bits_per_key` filter bits per
    /// entry (clamped to ≥ 1) and the matching optimal hash count.
    pub fn build(items: &[VertexId], bits_per_key: u8) -> Self {
        let bpk = usize::from(bits_per_key.max(1));
        let num_bits = (items.len().max(1) * bpk).next_multiple_of(64) as u64;
        let hashes = ((bpk as f64) * std::f64::consts::LN_2)
            .round()
            .clamp(1.0, 16.0) as u32;
        let mut filter = BloomFingerprint {
            bits: vec![0u64; (num_bits / 64) as usize],
            num_bits,
            hashes,
            len: items.len(),
        };
        for &v in items {
            let (h1, h2) = Self::hash_pair(v);
            for i in 0..filter.hashes {
                let bit = h1.wrapping_add(u64::from(i).wrapping_mul(h2)) % filter.num_bits;
                filter.bits[(bit / 64) as usize] |= 1 << (bit % 64);
            }
        }
        filter
    }

    fn hash_pair(v: VertexId) -> (u64, u64) {
        let mut sm = SplitMix64::new(u64::from(v));
        (sm.next(), sm.next() | 1)
    }

    /// The configured number of probe hashes.
    pub fn num_hashes(&self) -> u32 {
        self.hashes
    }

    /// The raw filter words, probe-hash count, and entry count, for the
    /// wire codec.
    pub fn wire_parts(&self) -> (&[u64], u32, usize) {
        (&self.bits, self.hashes, self.len)
    }

    /// Rebuild a filter from wire parts, validating the Bloom invariants
    /// (at least one word, 1–16 probe hashes). Returns `None` on any
    /// violation, so corrupted wire bytes can never panic a membership
    /// probe (`contains` reduces probe positions modulo `64 × words`,
    /// which the word check keeps nonzero).
    pub fn from_wire_parts(bits: Vec<u64>, hashes: u32, len: usize) -> Option<Self> {
        if bits.is_empty() || !(1..=16).contains(&hashes) {
            return None;
        }
        let num_bits = (bits.len() as u64) * 64;
        Some(BloomFingerprint {
            bits,
            num_bits,
            hashes,
            len,
        })
    }
}

impl ContextMembership for BloomFingerprint {
    fn contains(&self, candidate: VertexId) -> bool {
        let (h1, h2) = Self::hash_pair(candidate);
        (0..self.hashes).all(|i| {
            let bit = h1.wrapping_add(u64::from(i).wrapping_mul(h2)) % self.num_bits;
            self.bits[(bit / 64) as usize] & (1 << (bit % 64)) != 0
        })
    }

    fn byte_len(&self) -> usize {
        // u32 entry count + u8 probe-hash count + u32 word count + the
        // filter words (see the wire-format spec in the module docs).
        std::mem::size_of::<u32>() * 2 + 1 + self.bits.len() * std::mem::size_of::<u64>()
    }

    fn len(&self) -> usize {
        self.len
    }

    fn is_exact(&self) -> bool {
        false
    }

    fn wire_version(&self) -> u8 {
        3
    }
}

/// A versioned membership snapshot: the payload of a [`CarriedContext`].
///
/// Every variant holds its representation behind an `Arc`, so a hot
/// vertex's snapshot is captured once per epoch and shared by every walker
/// forwarded in the same wave — attaching it to another walker is an `Arc`
/// clone, not a `Vec` copy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContextSnapshot {
    /// v1: sorted, deduplicated out-neighbor ids (binary-searchable).
    Exact(Arc<Vec<VertexId>>),
    /// v2: delta-varint encoded sorted ids (exact, compact).
    Delta(Arc<DeltaFingerprint>),
    /// v3: Bloom filter (approximate, smallest).
    Bloom(Arc<BloomFingerprint>),
}

impl ContextSnapshot {
    /// The decoded sorted adjacency, for exact representations (`None` for
    /// Bloom, which is one-way).
    pub fn decoded(&self) -> Option<Vec<VertexId>> {
        match self {
            ContextSnapshot::Exact(adj) => Some(adj.as_ref().clone()),
            ContextSnapshot::Delta(d) => Some(d.decode()),
            ContextSnapshot::Bloom(_) => None,
        }
    }
}

impl ContextMembership for ContextSnapshot {
    fn contains(&self, candidate: VertexId) -> bool {
        match self {
            ContextSnapshot::Exact(adj) => adj.as_ref().contains(candidate),
            ContextSnapshot::Delta(d) => d.contains(candidate),
            ContextSnapshot::Bloom(b) => b.contains(candidate),
        }
    }

    fn byte_len(&self) -> usize {
        match self {
            ContextSnapshot::Exact(adj) => ContextMembership::byte_len(adj.as_ref()),
            ContextSnapshot::Delta(d) => d.byte_len(),
            ContextSnapshot::Bloom(b) => b.byte_len(),
        }
    }

    fn len(&self) -> usize {
        match self {
            ContextSnapshot::Exact(adj) => adj.len(),
            ContextSnapshot::Delta(d) => ContextMembership::len(d.as_ref()),
            ContextSnapshot::Bloom(b) => ContextMembership::len(b.as_ref()),
        }
    }

    fn is_exact(&self) -> bool {
        !matches!(self, ContextSnapshot::Bloom(_))
    }

    fn wire_version(&self) -> u8 {
        match self {
            ContextSnapshot::Exact(_) => 1,
            ContextSnapshot::Delta(_) => 2,
            ContextSnapshot::Bloom(_) => 3,
        }
    }
}

/// Bytes of the shared wire envelope: one version byte, the snapshot
/// vertex id, and the payload length (see the wire-format spec in the
/// module docs).
pub const CONTEXT_ENVELOPE_BYTES: usize =
    1 + std::mem::size_of::<VertexId>() + std::mem::size_of::<u32>();

/// A membership snapshot of one vertex's out-adjacency, captured by the
/// shard that owns it and carried with a forwarded walker. See the module
/// docs for the wire formats.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CarriedContext {
    /// The vertex whose adjacency was snapshotted.
    pub vertex: VertexId,
    /// The versioned membership representation.
    pub membership: ContextSnapshot,
}

impl CarriedContext {
    /// Build a version-1 (exact) context from a sorted, deduplicated
    /// adjacency vector.
    pub fn exact(vertex: VertexId, adjacency: Vec<VertexId>) -> Self {
        CarriedContext {
            vertex,
            membership: ContextSnapshot::Exact(Arc::new(adjacency)),
        }
    }

    /// Wire size of this context in bytes: envelope plus payload.
    pub fn byte_len(&self) -> usize {
        CONTEXT_ENVELOPE_BYTES + self.membership.byte_len()
    }

    /// Wire size the version-1 (exact `Vec<VertexId>`) format would need
    /// for a snapshot of `neighbors` entries — the baseline against which
    /// compact encodings and snapshot reuse are accounted.
    pub fn exact_wire_len(neighbors: usize) -> usize {
        CONTEXT_ENVELOPE_BYTES + std::mem::size_of::<VertexId>() * neighbors
    }
}

/// Walker-private state visible to a [`WalkModel`] at every step.
///
/// The executing cursor owns and advances this state; models only read it.
/// It deliberately excludes the visited path — models that need history
/// beyond `prev` should not exist in a forwardable walker (the path lives
/// with the cursor, not on the wire).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalkState {
    current: VertexId,
    prev: Option<VertexId>,
    steps_taken: usize,
    carried: Option<CarriedContext>,
    /// Second-order membership queries that had to fall back to a sampler
    /// that does not own the previous vertex (capture faults; see the
    /// module docs). A `Cell` so the read-only model query surface can
    /// record the fault.
    context_misses: Cell<u64>,
}

impl WalkState {
    /// Fresh state positioned at `start` with no steps taken.
    pub fn new(start: VertexId) -> Self {
        WalkState {
            current: start,
            prev: None,
            steps_taken: 0,
            carried: None,
            context_misses: Cell::new(0),
        }
    }

    /// The walker's current vertex.
    #[inline]
    pub fn current(&self) -> VertexId {
        self.current
    }

    /// The vertex the walker stepped from, `None` before the first step.
    #[inline]
    pub fn prev(&self) -> Option<VertexId> {
        self.prev
    }

    /// Steps taken so far.
    #[inline]
    pub fn steps_taken(&self) -> usize {
        self.steps_taken
    }

    /// The carried cross-shard context, if a forwarding shard attached one.
    pub fn carried_context(&self) -> Option<&CarriedContext> {
        self.carried.as_ref()
    }

    /// Whether the edge `prev → candidate` exists, answered from the
    /// carried membership snapshot when present (the sharded case — the
    /// local sampler does not own `prev`) and from `sampler` otherwise.
    ///
    /// Returns `false` when the walk has no previous vertex yet.
    ///
    /// When no valid snapshot is carried **and** the sampler does not own
    /// `prev` ([`StepSampler::owns_vertex`]), the fallback answer is
    /// unreliable — a range-sharded sampler always answers `false` for
    /// non-owned vertices. The condition is counted (drain it with
    /// [`WalkState::take_context_misses`]) instead of silently skewing the
    /// model's distribution.
    pub fn prev_adjacent(&self, candidate: VertexId, sampler: &dyn StepSampler) -> bool {
        let Some(prev) = self.prev else {
            return false;
        };
        if let Some(ctx) = &self.carried {
            if ctx.vertex == prev {
                return ctx.membership.contains(candidate);
            }
        }
        if !sampler.owns_vertex(prev) {
            // Capture fault: the forwarding shard failed to attach (or
            // attached a mismatched) context. Record it loudly; the
            // degraded answer below keeps the walk alive in release.
            self.context_misses.set(self.context_misses.get() + 1);
        }
        sampler.has_edge(prev, candidate)
    }

    /// Capture faults recorded by [`WalkState::prev_adjacent`] since the
    /// last drain (see the module docs on missing-context faults).
    pub fn context_misses(&self) -> u64 {
        self.context_misses.get()
    }

    /// Read and reset the capture-fault counter. The sharded service calls
    /// this after every step and folds the count into its per-shard
    /// `context_misses` statistic.
    pub fn take_context_misses(&self) -> u64 {
        self.context_misses.take()
    }

    /// Record one taken transition: `prev ← current`, `current ← next`.
    /// Any carried context is dropped — after a locally-sampled step the
    /// previous vertex is owned by the stepping shard again.
    pub(crate) fn advance(&mut self, next: VertexId) {
        self.prev = Some(self.current);
        self.current = next;
        self.steps_taken += 1;
        self.carried = None;
    }

    /// Attach a forwarded-context snapshot (used by the sharded service
    /// right before handing the walker to another shard).
    pub(crate) fn set_carried(&mut self, ctx: CarriedContext) {
        self.carried = Some(ctx);
    }
}

/// Object-safe sampling surface handed to [`WalkModel::step`].
///
/// This is [`TransitionSampler`] with the generic RNG parameter erased so
/// that `dyn WalkModel` stays a valid type; every `TransitionSampler`
/// implements it automatically.
pub trait StepSampler {
    /// Number of vertices in the graph.
    fn num_vertices(&self) -> usize;

    /// Out-degree of `v`.
    fn degree(&self, v: VertexId) -> usize;

    /// Sample one out-neighbor of `v` proportionally to the edge biases.
    fn sample_neighbor_dyn(&self, v: VertexId, rng: &mut dyn RngCore) -> Option<VertexId>;

    /// Whether the edge `(src, dst)` exists *in this sampler's view* — a
    /// range-sharded engine answers `false` for vertices it does not own,
    /// which is exactly why second-order models route membership through
    /// [`WalkState::prev_adjacent`] instead of calling this directly.
    fn has_edge(&self, src: VertexId, dst: VertexId) -> bool;

    /// Whether this sampler owns `v`'s out-edges, i.e. whether
    /// [`StepSampler::has_edge`] answers authoritatively for `src == v`.
    /// Whole-graph samplers own everything; range-sharded engines own only
    /// their slice. [`WalkState::prev_adjacent`] uses this to distinguish
    /// a true "no edge" from a non-owning sampler's unconditional `false`.
    fn owns_vertex(&self, v: VertexId) -> bool;
}

impl<S: TransitionSampler + ?Sized> StepSampler for S {
    fn num_vertices(&self) -> usize {
        TransitionSampler::num_vertices(self)
    }

    fn degree(&self, v: VertexId) -> usize {
        TransitionSampler::degree(self, v)
    }

    #[inline]
    fn sample_neighbor_dyn(&self, v: VertexId, mut rng: &mut dyn RngCore) -> Option<VertexId> {
        TransitionSampler::sample_neighbor(self, v, &mut rng)
    }

    fn has_edge(&self, src: VertexId, dst: VertexId) -> bool {
        TransitionSampler::has_edge(self, src, dst)
    }

    fn owns_vertex(&self, v: VertexId) -> bool {
        TransitionSampler::owns_vertex(self, v)
    }
}

/// Sized adapter over a (possibly unsized) [`TransitionSampler`] reference,
/// so the execution layers can hand `&dyn StepSampler` to a model even when
/// their sampler generic is `?Sized`.
pub struct SamplerBridge<'a, S: TransitionSampler + ?Sized>(pub &'a S);

impl<S: TransitionSampler + ?Sized> StepSampler for SamplerBridge<'_, S> {
    fn num_vertices(&self) -> usize {
        TransitionSampler::num_vertices(self.0)
    }

    fn degree(&self, v: VertexId) -> usize {
        TransitionSampler::degree(self.0, v)
    }

    #[inline]
    fn sample_neighbor_dyn(&self, v: VertexId, mut rng: &mut dyn RngCore) -> Option<VertexId> {
        TransitionSampler::sample_neighbor(self.0, v, &mut rng)
    }

    fn has_edge(&self, src: VertexId, dst: VertexId) -> bool {
        TransitionSampler::has_edge(self.0, src, dst)
    }

    fn owns_vertex(&self, v: VertexId) -> bool {
        TransitionSampler::owns_vertex(self.0, v)
    }
}

/// A pluggable walk application: per-walk state initialisation plus a
/// one-transition step function.
///
/// Implementations must be cheap to share (`Send + Sync`; backends clone an
/// `Arc<dyn WalkModel>` per walker) and deterministic given the RNG stream:
/// all randomness must come from the `rng` argument, in a fixed draw order,
/// so a walk is reproducible for a seed regardless of which backend drives
/// it.
pub trait WalkModel: Send + Sync + std::fmt::Debug {
    /// Short human-readable application name used in reports.
    fn name(&self) -> &str;

    /// Expected (or exact) number of steps per walk, used for sizing.
    fn expected_length(&self) -> usize;

    /// Hard deterministic cap on the number of steps a walk can take.
    /// Unlike [`expected_length`](WalkModel::expected_length) this is
    /// always finite; schedulers use it to finish walkers without drawing
    /// randomness ([`WalkCursor::at_length_limit`](crate::WalkCursor::at_length_limit)).
    fn max_steps(&self) -> usize;

    /// What cross-shard state this model needs carried with a forwarded
    /// walker. Defaults to [`ContextRequirement::None`].
    fn required_context(&self) -> ContextRequirement {
        ContextRequirement::None
    }

    /// Create the walker state for a walk starting at `start`.
    fn init(&self, start: VertexId) -> WalkState {
        WalkState::new(start)
    }

    /// Produce the next transition for a walker in `state`.
    ///
    /// The executor applies a returned [`Transition::Step`] to the state
    /// (and the path); the model never mutates state itself. A model that
    /// has reached its termination condition must return
    /// [`Transition::Terminate`] *without* drawing randomness when the
    /// condition is deterministic (length caps), so that finished walks
    /// stay reproducible under schedulers that probe for completion.
    fn step(
        &self,
        state: &WalkState,
        sampler: &dyn StepSampler,
        rng: &mut dyn RngCore,
    ) -> Transition;
}

/// A shareable, type-erased walk model — what every backend stores.
pub type SharedWalkModel = Arc<dyn WalkModel>;

// ---------------------------------------------------------------------------
// Built-in models
// ---------------------------------------------------------------------------

use crate::apps::{DeepWalkConfig, Node2VecConfig, PprConfig, SimpleSamplingConfig};
use rand::Rng;

/// Biased DeepWalk: first-order, fixed length, one biased sample per step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeepWalkModel {
    /// The application parameters.
    pub config: DeepWalkConfig,
}

impl WalkModel for DeepWalkModel {
    fn name(&self) -> &str {
        "DeepWalk"
    }

    fn expected_length(&self) -> usize {
        self.config.walk_length
    }

    fn max_steps(&self) -> usize {
        self.config.walk_length
    }

    fn step(
        &self,
        state: &WalkState,
        sampler: &dyn StepSampler,
        rng: &mut dyn RngCore,
    ) -> Transition {
        if state.steps_taken() >= self.config.walk_length {
            return Transition::Terminate;
        }
        match sampler.sample_neighbor_dyn(state.current(), rng) {
            Some(next) => Transition::Step(next),
            None => Transition::Terminate,
        }
    }
}

/// Unbiased simple sampling — evaluated on unit-bias graphs, where the
/// biased sampler and the uniform sampler coincide (§6's
/// `random_walk_simple_sampling` kernel).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimpleSamplingModel {
    /// The application parameters.
    pub config: SimpleSamplingConfig,
}

impl WalkModel for SimpleSamplingModel {
    fn name(&self) -> &str {
        "SimpleSampling"
    }

    fn expected_length(&self) -> usize {
        self.config.walk_length
    }

    fn max_steps(&self) -> usize {
        self.config.walk_length
    }

    fn step(
        &self,
        state: &WalkState,
        sampler: &dyn StepSampler,
        rng: &mut dyn RngCore,
    ) -> Transition {
        if state.steps_taken() >= self.config.walk_length {
            return Transition::Terminate;
        }
        match sampler.sample_neighbor_dyn(state.current(), rng) {
            Some(next) => Transition::Step(next),
            None => Transition::Terminate,
        }
    }
}

/// Personalized PageRank: terminate with a fixed probability at every step,
/// hard-capped at `max_length`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PprModel {
    /// The application parameters.
    pub config: PprConfig,
}

impl WalkModel for PprModel {
    fn name(&self) -> &str {
        "PPR"
    }

    fn expected_length(&self) -> usize {
        (1.0 / self.config.stop_probability).round() as usize
    }

    fn max_steps(&self) -> usize {
        self.config.max_length
    }

    fn step(
        &self,
        state: &WalkState,
        sampler: &dyn StepSampler,
        rng: &mut dyn RngCore,
    ) -> Transition {
        if state.steps_taken() >= self.config.max_length
            || rng.gen::<f64>() < self.config.stop_probability
        {
            return Transition::Terminate;
        }
        match sampler.sample_neighbor_dyn(state.current(), rng) {
            Some(next) => Transition::Step(next),
            None => Transition::Terminate,
        }
    }
}

/// node2vec: second-order walks. The transition bias is additionally
/// multiplied by `1/p`, `1` or `1/q` depending on whether the candidate is
/// the previous vertex, an out-neighbor of the previous vertex, or neither
/// (Equation 1). Following KnightKing (and the paper, which adopts
/// KnightKing's approach for second-order applications), the factor is
/// applied by rejection: sample from the static bias distribution, accept
/// with probability `f / max(f)`.
///
/// The distance factor is evaluated on the **directed out-adjacency of the
/// previous vertex** (`prev → candidate`), so a single membership
/// fingerprint of `prev` fully determines the factor — which is what lets
/// the sharded service forward node2vec walkers with a compact carried
/// context and still reproduce the single-engine transition distribution
/// exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Node2VecModel {
    /// The application parameters.
    pub config: Node2VecConfig,
}

impl WalkModel for Node2VecModel {
    fn name(&self) -> &str {
        "node2vec"
    }

    fn expected_length(&self) -> usize {
        self.config.walk_length
    }

    fn max_steps(&self) -> usize {
        self.config.walk_length
    }

    fn required_context(&self) -> ContextRequirement {
        ContextRequirement::PreviousAdjacency
    }

    fn step(
        &self,
        state: &WalkState,
        sampler: &dyn StepSampler,
        mut rng: &mut dyn RngCore,
    ) -> Transition {
        if state.steps_taken() >= self.config.walk_length {
            return Transition::Terminate;
        }
        let current = state.current();
        let Some(prev) = state.prev() else {
            // The first step has no history: plain biased sampling.
            return match sampler.sample_neighbor_dyn(current, rng) {
                Some(next) => Transition::Step(next),
                None => Transition::Terminate,
            };
        };
        let inv_p = 1.0 / self.config.p;
        let inv_q = 1.0 / self.config.q;
        let max_factor = inv_p.max(1.0).max(inv_q);
        // Expected number of trials is bounded by max_factor / min_factor;
        // cap defensively to avoid pathological loops on adversarial
        // parameters.
        for _ in 0..10_000 {
            let Some(candidate) = sampler.sample_neighbor_dyn(current, &mut rng) else {
                return Transition::Terminate;
            };
            let factor = if candidate == prev {
                inv_p
            } else if state.prev_adjacent(candidate, sampler) {
                1.0
            } else {
                inv_q
            };
            if rng.gen::<f64>() * max_factor < factor {
                return Transition::Step(candidate);
            }
        }
        Transition::Terminate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bingo_sampling::rng::Pcg64;
    use rand::SeedableRng;

    /// A fixed fan-out sampler for exercising models without an engine.
    #[derive(Debug)]
    struct FanSampler {
        n: usize,
        edges: Vec<(VertexId, VertexId)>,
    }

    impl TransitionSampler for FanSampler {
        fn num_vertices(&self) -> usize {
            self.n
        }
        fn degree(&self, v: VertexId) -> usize {
            self.edges.iter().filter(|&&(s, _)| s == v).count()
        }
        fn sample_neighbor<R: Rng + ?Sized>(&self, v: VertexId, rng: &mut R) -> Option<VertexId> {
            let out: Vec<VertexId> = self
                .edges
                .iter()
                .filter(|&&(s, _)| s == v)
                .map(|&(_, d)| d)
                .collect();
            if out.is_empty() {
                None
            } else {
                Some(out[rng.gen_range(0..out.len())])
            }
        }
        fn has_edge(&self, src: VertexId, dst: VertexId) -> bool {
            self.edges.contains(&(src, dst))
        }
        fn edge_bias(&self, src: VertexId, dst: VertexId) -> Option<f64> {
            TransitionSampler::has_edge(self, src, dst).then_some(1.0)
        }
    }

    fn fan() -> FanSampler {
        FanSampler {
            n: 5,
            edges: vec![(0, 1), (1, 2), (1, 0), (2, 3), (3, 4), (4, 0)],
        }
    }

    #[test]
    fn deepwalk_model_terminates_at_length() {
        let model = DeepWalkModel {
            config: DeepWalkConfig { walk_length: 0 },
        };
        let mut rng = Pcg64::seed_from_u64(1);
        let state = WalkState::new(0);
        assert_eq!(
            model.step(&state, &fan(), &mut rng),
            Transition::Terminate,
            "length-0 walk takes no step and draws no randomness"
        );
    }

    #[test]
    fn state_advance_tracks_prev_and_drops_context() {
        let mut state = WalkState::new(3);
        state.set_carried(CarriedContext::exact(3, vec![1, 4]));
        assert!(state.carried_context().is_some());
        state.advance(4);
        assert_eq!(state.current(), 4);
        assert_eq!(state.prev(), Some(3));
        assert_eq!(state.steps_taken(), 1);
        assert!(
            state.carried_context().is_none(),
            "carried context is single-use"
        );
    }

    #[test]
    fn prev_adjacent_prefers_carried_snapshot_over_sampler() {
        let sampler = fan();
        let mut state = WalkState::new(1);
        state.advance(2); // prev = 1
                          // Without a snapshot the sampler answers: 1 → 0 exists.
        assert!(state.prev_adjacent(0, &sampler));
        assert!(!state.prev_adjacent(3, &sampler));
        // A snapshot claiming a different adjacency wins (the sharded case,
        // where the local sampler does not own prev and would answer false).
        state.set_carried(CarriedContext::exact(1, vec![3]));
        assert!(state.prev_adjacent(3, &sampler));
        assert!(!state.prev_adjacent(0, &sampler));
        assert_eq!(
            state.context_misses(),
            0,
            "an owning sampler or a valid snapshot never records a fault"
        );
    }

    /// A sampler standing in for a range-sharded engine: it owns nothing,
    /// so `has_edge` is never authoritative.
    #[derive(Debug)]
    struct DisownedSampler(FanSampler);

    impl TransitionSampler for DisownedSampler {
        fn num_vertices(&self) -> usize {
            self.0.n
        }
        fn degree(&self, v: VertexId) -> usize {
            TransitionSampler::degree(&self.0, v)
        }
        fn sample_neighbor<R: Rng + ?Sized>(&self, v: VertexId, rng: &mut R) -> Option<VertexId> {
            self.0.sample_neighbor(v, rng)
        }
        fn has_edge(&self, _src: VertexId, _dst: VertexId) -> bool {
            false // a non-owning shard engine answers false unconditionally
        }
        fn edge_bias(&self, _src: VertexId, _dst: VertexId) -> Option<f64> {
            None
        }
        fn owns_vertex(&self, _v: VertexId) -> bool {
            false
        }
    }

    #[test]
    fn prev_adjacent_counts_misses_on_non_owning_sampler() {
        let sampler = DisownedSampler(fan());
        let mut state = WalkState::new(1);
        state.advance(2); // prev = 1, no carried context

        // The fallback still answers (degraded: false), but the capture
        // fault is recorded instead of silently passing as "no edge".
        assert!(!state.prev_adjacent(0, &sampler));
        assert_eq!(state.context_misses(), 1);
        assert!(!state.prev_adjacent(3, &sampler));
        assert_eq!(state.take_context_misses(), 2);
        assert_eq!(state.context_misses(), 0, "drain resets the counter");

        // With a valid carried snapshot no fault is recorded.
        state.set_carried(CarriedContext::exact(1, vec![3]));
        assert!(state.prev_adjacent(3, &sampler));
        assert_eq!(state.context_misses(), 0);

        // A *mismatched* snapshot (wrong vertex) is a fault again.
        state.set_carried(CarriedContext::exact(0, vec![3]));
        assert!(!state.prev_adjacent(3, &sampler));
        assert_eq!(state.context_misses(), 1);
    }

    #[test]
    fn delta_fingerprint_round_trips_and_answers_membership() {
        let ids: Vec<VertexId> = vec![0, 1, 5, 6, 7, 130, 131, 4000, 1_000_000];
        let delta = DeltaFingerprint::encode(&ids);
        assert_eq!(delta.decode(), ids);
        assert_eq!(ContextMembership::len(&delta), ids.len());
        for &v in &ids {
            assert!(delta.contains(v), "member {v}");
        }
        for v in [2, 4, 129, 132, 999_999, 1_000_001] {
            assert!(!delta.contains(v), "non-member {v}");
        }
        assert!(delta.is_exact());
        assert_eq!(delta.wire_version(), 2);
        // Clustered ids encode in ~1 byte per entry vs 4 for the exact Vec.
        let clustered: Vec<VertexId> = (500..564).collect();
        let delta = DeltaFingerprint::encode(&clustered);
        let exact_payload = ContextMembership::byte_len(&clustered);
        assert!(
            delta.byte_len() * 3 < exact_payload,
            "delta {} vs exact {exact_payload} bytes",
            delta.byte_len()
        );
        assert!(DeltaFingerprint::encode(&[]).decode().is_empty());
    }

    #[test]
    fn bloom_fingerprint_has_no_false_negatives_and_few_false_positives() {
        let ids: Vec<VertexId> = (0..512).map(|i| i * 7 + 3).collect();
        let bloom = BloomFingerprint::build(&ids, 10);
        for &v in &ids {
            assert!(bloom.contains(v), "no false negatives ({v})");
        }
        assert!(!bloom.is_exact());
        assert_eq!(bloom.wire_version(), 3);
        assert!(bloom.num_hashes() >= 1);
        let false_positives = (100_000..110_000).filter(|&v| bloom.contains(v)).count();
        assert!(
            false_positives < 500,
            "≈1% expected at 10 bits/key, saw {false_positives}/10000"
        );
        // The filter is far smaller than the exact payload.
        assert!(bloom.byte_len() < ContextMembership::byte_len(&ids));
    }

    #[test]
    fn context_encodings_agree_on_membership() {
        let ids: Vec<VertexId> = vec![2, 9, 17, 33, 64, 65, 900];
        let adjacency = Arc::new(ids.clone());
        let exact = ContextEncoding::Exact.encode(7, adjacency.clone());
        let delta = ContextEncoding::Delta.encode(7, adjacency.clone());
        let bloom = ContextEncoding::Bloom { bits_per_key: 12 }.encode(7, adjacency);
        assert_eq!(exact.membership.wire_version(), 1);
        assert_eq!(delta.membership.wire_version(), 2);
        assert_eq!(bloom.membership.wire_version(), 3);
        for &v in &ids {
            assert!(exact.membership.contains(v));
            assert!(delta.membership.contains(v));
            assert!(bloom.membership.contains(v), "no false negatives");
        }
        assert!(!exact.membership.contains(3));
        assert!(!delta.membership.contains(3));
        assert_eq!(exact.membership.decoded().as_deref(), Some(&ids[..]));
        assert_eq!(delta.membership.decoded().as_deref(), Some(&ids[..]));
        assert_eq!(bloom.membership.decoded(), None, "Bloom is one-way");
        assert!(delta.byte_len() < exact.byte_len());
        assert_eq!(
            exact.byte_len(),
            CarriedContext::exact_wire_len(ids.len()),
            "v1 wire size matches the accounting baseline"
        );
    }

    #[test]
    fn node2vec_model_declares_previous_adjacency_context() {
        let n2v = Node2VecModel {
            config: Node2VecConfig::default(),
        };
        assert_eq!(
            n2v.required_context(),
            ContextRequirement::PreviousAdjacency
        );
        let dw = DeepWalkModel {
            config: DeepWalkConfig::default(),
        };
        assert_eq!(dw.required_context(), ContextRequirement::None);
    }

    #[test]
    fn models_are_object_safe_and_usable_boxed() {
        let models: Vec<Box<dyn WalkModel>> = vec![
            Box::new(DeepWalkModel {
                config: DeepWalkConfig { walk_length: 3 },
            }),
            Box::new(Node2VecModel {
                config: Node2VecConfig::default(),
            }),
            Box::new(PprModel {
                config: PprConfig::default(),
            }),
            Box::new(SimpleSamplingModel {
                config: SimpleSamplingConfig { walk_length: 3 },
            }),
        ];
        let sampler = fan();
        let mut rng = Pcg64::seed_from_u64(9);
        for model in &models {
            let state = model.init(0);
            assert_eq!(state.current(), 0);
            // One step through the erased surface must produce a transition.
            let t = model.step(&state, &sampler, &mut rng);
            match t {
                Transition::Step(v) => assert!(TransitionSampler::has_edge(&sampler, 0, v)),
                Transition::Terminate => {}
            }
            assert!(!model.name().is_empty());
            assert!(model.max_steps() > 0);
        }
    }

    #[test]
    fn carried_context_byte_len_counts_envelope_and_payload() {
        let ctx = CarriedContext::exact(7, vec![1, 2, 3]);
        assert_eq!(
            ctx.byte_len(),
            CONTEXT_ENVELOPE_BYTES + 3 * std::mem::size_of::<VertexId>()
        );
    }
}

//! Incremental maintenance of previously computed walks.
//!
//! Section 7.2 of the paper positions Bingo as *orthogonal* to systems such
//! as Wharf and FIRM, which index previously computed random walks so that,
//! when the graph changes, only the affected walks are recomputed — "once
//! the calculated random walks are identified, instead of rebuilding the
//! sampling space from scratch, Bingo can help them rapidly update the
//! random walks."
//!
//! [`WalkStore`] implements that integration: it stores a corpus of walks
//! together with an inverted index from vertices to the walk positions that
//! visit them. When an edge `(u, v)` is inserted or deleted, the store finds
//! every walk step that left `u` (deletions additionally filter on steps
//! that took the removed edge), truncates those walks at the affected
//! position, and re-samples their suffixes from the *updated* engine — which
//! is exactly where Bingo's `O(1)` sampling after an `O(K)` update pays off.

use crate::apps::{WalkCursor, WalkSpec};
use crate::model::SharedWalkModel;
use crate::TransitionSampler;
use bingo_graph::VertexId;
use bingo_sampling::rng::Pcg64;
use rand::SeedableRng;
use rayon::prelude::*;

/// Statistics describing one incremental-maintenance pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RefreshStats {
    /// Walks whose suffix had to be re-sampled.
    pub walks_refreshed: usize,
    /// Total steps that were discarded and re-sampled.
    pub steps_resampled: usize,
}

/// A corpus of stored walks with an inverted vertex → walk-position index.
#[derive(Debug, Clone, Default)]
pub struct WalkStore {
    walks: Vec<Vec<VertexId>>,
    /// `index[v]` lists `(walk_id, position)` pairs where vertex `v` occurs.
    index: Vec<Vec<(u32, u32)>>,
    target_length: usize,
    seed: u64,
}

impl WalkStore {
    /// Build a store by running `spec` once from every start vertex over
    /// `sampler` (one walker per vertex, like the paper's evaluation).
    pub fn generate<S>(sampler: &S, spec: &WalkSpec, seed: u64) -> Self
    where
        S: TransitionSampler + ?Sized,
    {
        Self::generate_model(sampler, &spec.to_model(), seed)
    }

    /// Build a store from explicit start vertices.
    pub fn generate_from<S>(sampler: &S, spec: &WalkSpec, starts: &[VertexId], seed: u64) -> Self
    where
        S: TransitionSampler + ?Sized,
    {
        Self::generate_model_from(sampler, &spec.to_model(), starts, seed)
    }

    /// Build a store by running an arbitrary
    /// [`WalkModel`](crate::model::WalkModel) once from every vertex.
    pub fn generate_model<S>(sampler: &S, model: &SharedWalkModel, seed: u64) -> Self
    where
        S: TransitionSampler + ?Sized,
    {
        let starts: Vec<VertexId> = (0..sampler.num_vertices() as VertexId).collect();
        Self::generate_model_from(sampler, model, &starts, seed)
    }

    /// Build a store by driving an arbitrary model from explicit start
    /// vertices — the generation primitive every spec-based constructor
    /// routes through.
    pub fn generate_model_from<S>(
        sampler: &S,
        model: &SharedWalkModel,
        starts: &[VertexId],
        seed: u64,
    ) -> Self
    where
        S: TransitionSampler + ?Sized,
    {
        let walks: Vec<Vec<VertexId>> = starts
            .par_iter()
            .enumerate()
            .map(|(i, &start)| {
                let mut rng = Pcg64::seed_from_u64(seed ^ (i as u64).wrapping_mul(0x9E37_79B9));
                let mut cursor = WalkCursor::with_model(model.clone(), start);
                while cursor.step(sampler, &mut rng).is_some() {}
                cursor.into_path()
            })
            .collect();
        let mut store = WalkStore {
            walks,
            index: Vec::new(),
            target_length: model.expected_length(),
            seed,
        };
        store.rebuild_index(sampler.num_vertices());
        store
    }

    /// Build a store from walks computed elsewhere (e.g. collected from the
    /// sharded walk service). `target_length` is the length refreshed walks
    /// are re-extended to, and `seed` drives suffix re-sampling.
    pub fn from_walks(
        walks: Vec<Vec<VertexId>>,
        num_vertices: usize,
        target_length: usize,
        seed: u64,
    ) -> Self {
        let mut store = WalkStore {
            walks,
            index: Vec::new(),
            target_length,
            seed,
        };
        store.rebuild_index(num_vertices);
        store
    }

    fn rebuild_index(&mut self, num_vertices: usize) {
        let mut index: Vec<Vec<(u32, u32)>> = vec![Vec::new(); num_vertices];
        for (walk_id, walk) in self.walks.iter().enumerate() {
            for (pos, &v) in walk.iter().enumerate() {
                if (v as usize) < index.len() {
                    index[v as usize].push((walk_id as u32, pos as u32));
                }
            }
        }
        self.index = index;
    }

    /// Number of stored walks.
    pub fn num_walks(&self) -> usize {
        self.walks.len()
    }

    /// The stored walks.
    pub fn walks(&self) -> &[Vec<VertexId>] {
        &self.walks
    }

    /// Total number of steps across all stored walks.
    pub fn total_steps(&self) -> usize {
        self.walks.iter().map(|w| w.len().saturating_sub(1)).sum()
    }

    /// Walk ids that visit vertex `v`.
    pub fn walks_visiting(&self, v: VertexId) -> Vec<usize> {
        let mut ids: Vec<usize> = self
            .index
            .get(v as usize)
            .map(|entries| entries.iter().map(|&(w, _)| w as usize).collect())
            .unwrap_or_default();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Approximate memory used by the stored walks and the inverted index.
    pub fn memory_bytes(&self) -> usize {
        let walks: usize = self
            .walks
            .iter()
            .map(|w| w.capacity() * std::mem::size_of::<VertexId>())
            .sum();
        let index: usize = self
            .index
            .iter()
            .map(|e| e.capacity() * std::mem::size_of::<(u32, u32)>())
            .sum();
        walks + index
    }

    /// Earliest position in each affected walk that must be invalidated
    /// because it *departed from* `src` (and, for deletions, stepped to
    /// `removed_dst`).
    fn affected_positions(
        &self,
        src: VertexId,
        removed_dst: Option<VertexId>,
    ) -> Vec<(usize, usize)> {
        let mut affected: std::collections::BTreeMap<usize, usize> = Default::default();
        let Some(entries) = self.index.get(src as usize) else {
            return Vec::new();
        };
        for &(walk_id, pos) in entries {
            let walk = &self.walks[walk_id as usize];
            let pos = pos as usize;
            // A step departs from `src` only if it is not the final vertex.
            if pos + 1 >= walk.len() {
                // A walk that *ended* at src could now be extendable after an
                // insertion; treat it as affected from its last position.
                if removed_dst.is_none() && walk.len() - 1 < self.target_length {
                    affected
                        .entry(walk_id as usize)
                        .and_modify(|p| *p = (*p).min(pos))
                        .or_insert(pos);
                }
                continue;
            }
            match removed_dst {
                // Deletion: only steps that actually traversed the removed
                // edge are invalid.
                Some(dst) if walk[pos + 1] != dst => continue,
                _ => {}
            }
            affected
                .entry(walk_id as usize)
                .and_modify(|p| *p = (*p).min(pos))
                .or_insert(pos);
        }
        affected.into_iter().collect()
    }

    fn resample_suffixes<S>(&mut self, sampler: &S, affected: Vec<(usize, usize)>) -> RefreshStats
    where
        S: TransitionSampler + ?Sized,
    {
        let seed = self.seed;
        let target = self.target_length;
        let stats: Vec<(usize, usize, Vec<VertexId>)> = affected
            .par_iter()
            .map(|&(walk_id, from_pos)| {
                let walk = &self.walks[walk_id];
                let mut rng = Pcg64::seed_from_u64(
                    seed ^ (walk_id as u64).wrapping_mul(0xA24B_AED4) ^ (from_pos as u64) << 32,
                );
                // Keep the prefix up to and including `from_pos`, then
                // re-sample from the (updated) engine until the target
                // length is reached again.
                let mut new_walk: Vec<VertexId> = walk[..=from_pos].to_vec();
                let prefix_len = new_walk.len();
                let mut current = new_walk[prefix_len - 1];
                while new_walk.len() <= target {
                    match sampler.sample_neighbor(current, &mut rng) {
                        Some(next) => {
                            new_walk.push(next);
                            current = next;
                        }
                        None => break,
                    }
                }
                (walk_id, new_walk.len() - prefix_len, new_walk)
            })
            .collect();
        let mut result = RefreshStats::default();
        for (walk_id, new_steps, new_walk) in stats {
            result.walks_refreshed += 1;
            result.steps_resampled += new_steps;
            self.walks[walk_id] = new_walk;
        }
        result
    }

    /// React to an edge insertion `(src, dst)`: every stored walk that
    /// departs from `src` is re-sampled from that position so the new edge
    /// gets its proper probability mass, and walks that had stalled at `src`
    /// are extended. The `sampler` must already reflect the insertion.
    pub fn on_edge_inserted<S>(
        &mut self,
        sampler: &S,
        src: VertexId,
        _dst: VertexId,
    ) -> RefreshStats
    where
        S: TransitionSampler + ?Sized,
    {
        let affected = self.affected_positions(src, None);
        let stats = self.resample_suffixes(sampler, affected);
        if stats.walks_refreshed > 0 {
            self.rebuild_index(sampler.num_vertices());
        }
        stats
    }

    /// React to an edge deletion `(src, dst)`: only walks that traversed the
    /// removed edge are re-sampled. The `sampler` must already reflect the
    /// deletion.
    pub fn on_edge_deleted<S>(&mut self, sampler: &S, src: VertexId, dst: VertexId) -> RefreshStats
    where
        S: TransitionSampler + ?Sized,
    {
        let affected = self.affected_positions(src, Some(dst));
        let stats = self.resample_suffixes(sampler, affected);
        if stats.walks_refreshed > 0 {
            self.rebuild_index(sampler.num_vertices());
        }
        stats
    }

    /// Verify that every stored walk is a valid path in `sampler`'s current
    /// graph (used by tests; returns the first invalid step found).
    pub fn validate<S>(&self, sampler: &S) -> std::result::Result<(), (usize, VertexId, VertexId)>
    where
        S: TransitionSampler + ?Sized,
    {
        for (walk_id, walk) in self.walks.iter().enumerate() {
            for pair in walk.windows(2) {
                if !sampler.has_edge(pair[0], pair[1]) {
                    return Err((walk_id, pair[0], pair[1]));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::DeepWalkConfig;
    use bingo_core::{BingoConfig, BingoEngine};
    use bingo_graph::{Bias, DynamicGraph};

    fn ring_engine(n: usize) -> BingoEngine {
        let mut g = DynamicGraph::new(n);
        for v in 0..n as u32 {
            g.insert_edge(v, (v + 1) % n as u32, Bias::from_int(2))
                .unwrap();
            g.insert_edge(v, (v + 2) % n as u32, Bias::from_int(1))
                .unwrap();
        }
        BingoEngine::build(&g, BingoConfig::default()).unwrap()
    }

    fn spec() -> WalkSpec {
        WalkSpec::DeepWalk(DeepWalkConfig { walk_length: 12 })
    }

    #[test]
    fn generate_builds_one_walk_per_vertex_with_index() {
        let engine = ring_engine(16);
        let store = WalkStore::generate(&engine, &spec(), 7);
        assert_eq!(store.num_walks(), 16);
        assert_eq!(store.total_steps(), 16 * 12);
        assert!(store.validate(&engine).is_ok());
        // Every vertex is the start of its own walk, so it is visited.
        for v in 0..16u32 {
            assert!(!store.walks_visiting(v).is_empty());
        }
        assert!(store.memory_bytes() > 0);
    }

    #[test]
    fn deletion_refreshes_only_walks_using_the_edge() {
        let mut engine = ring_engine(16);
        let mut store = WalkStore::generate(&engine, &spec(), 7);
        // Count walks that traverse the edge (0, 1) before the deletion.
        let uses_edge = store
            .walks()
            .iter()
            .filter(|w| w.windows(2).any(|p| p[0] == 0 && p[1] == 1))
            .count();
        engine.delete_edge(0, 1).unwrap();
        let stats = store.on_edge_deleted(&engine, 0, 1);
        assert_eq!(stats.walks_refreshed, uses_edge);
        // The corpus must be valid against the *updated* graph: no walk may
        // still traverse the deleted edge.
        assert!(store.validate(&engine).is_ok());
    }

    #[test]
    fn deletion_of_unused_edge_refreshes_nothing() {
        let mut engine = ring_engine(8);
        // Add an edge nobody has walked yet (it does not exist during
        // generation), then delete it again.
        let store_before = WalkStore::generate(&engine, &spec(), 3);
        engine.insert_edge(3, 7, Bias::from_int(1)).unwrap();
        engine.delete_edge(3, 7).unwrap();
        let mut store = store_before.clone();
        let stats = store.on_edge_deleted(&engine, 3, 7);
        assert_eq!(stats.walks_refreshed, 0);
        assert_eq!(store.walks(), store_before.walks());
    }

    #[test]
    fn insertion_gives_the_new_edge_probability_mass() {
        let mut engine = ring_engine(16);
        let mut store = WalkStore::generate(&engine, &spec(), 5);
        // Insert a heavy new edge out of vertex 4 and refresh.
        engine.insert_edge(4, 12, Bias::from_int(50)).unwrap();
        let stats = store.on_edge_inserted(&engine, 4, 12);
        assert!(stats.walks_refreshed > 0);
        assert!(store.validate(&engine).is_ok());
        // With bias 50 against 2 + 1, most refreshed departures from 4
        // should now take the new edge.
        let departures_via_new: usize = store
            .walks()
            .iter()
            .map(|w| w.windows(2).filter(|p| p[0] == 4 && p[1] == 12).count())
            .sum();
        assert!(departures_via_new > 0);
    }

    #[test]
    fn refreshed_walks_are_restored_to_target_length() {
        let mut engine = ring_engine(12);
        let mut store = WalkStore::generate(&engine, &spec(), 9);
        engine.delete_edge(5, 6).unwrap();
        store.on_edge_deleted(&engine, 5, 6);
        for walk in store.walks() {
            // The ring (minus one edge) still has an out-edge everywhere, so
            // every refreshed walk must reach the full target length again.
            assert_eq!(walk.len(), 13, "walk not restored: {walk:?}");
        }
    }

    #[test]
    fn walks_visiting_unknown_vertex_is_empty() {
        let engine = ring_engine(4);
        let store = WalkStore::generate(&engine, &spec(), 1);
        assert!(store.walks_visiting(99).is_empty());
    }
}

//! Random-walk applications (§2.2, §6.1).
//!
//! * **Biased DeepWalk** — first-order walks of a fixed length; each step
//!   samples a neighbor proportionally to the edge bias.
//! * **node2vec** — second-order walks: the transition bias is additionally
//!   multiplied by `1/p`, `1` or `1/q` depending on the distance between the
//!   previous vertex and the candidate (Equation 1). Following KnightKing
//!   (and the paper, which adopts KnightKing's approach for second-order
//!   applications), the second-order factor is applied by rejection: sample
//!   a candidate from the static bias distribution, then accept it with
//!   probability `f(w, v) / max(f)`.
//! * **Personalized PageRank (PPR)** — walks terminate at every step with a
//!   fixed probability (1/80 in the evaluation, for an expected length of
//!   80).
//! * **Simple sampling** — unbiased fixed-length walks (the
//!   `random_walk_simple_sampling` kernel of §6).

use crate::TransitionSampler;
use bingo_graph::VertexId;
use rand::Rng;

/// Configuration of biased DeepWalk.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeepWalkConfig {
    /// Number of steps per walk (the paper uses 80).
    pub walk_length: usize,
}

impl Default for DeepWalkConfig {
    fn default() -> Self {
        DeepWalkConfig { walk_length: 80 }
    }
}

/// Configuration of node2vec.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Node2VecConfig {
    /// Number of steps per walk.
    pub walk_length: usize,
    /// Return parameter `p` (the paper uses 0.5).
    pub p: f64,
    /// In-out parameter `q` (the paper uses 2.0).
    pub q: f64,
}

impl Default for Node2VecConfig {
    fn default() -> Self {
        Node2VecConfig {
            walk_length: 80,
            p: 0.5,
            q: 2.0,
        }
    }
}

/// Configuration of personalized PageRank walks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PprConfig {
    /// Per-step termination probability (the paper uses 1/80).
    pub stop_probability: f64,
    /// Hard cap on the walk length to bound worst-case work.
    pub max_length: usize,
}

impl Default for PprConfig {
    fn default() -> Self {
        PprConfig {
            stop_probability: 1.0 / 80.0,
            max_length: 800,
        }
    }
}

/// Configuration of unbiased simple-sampling walks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimpleSamplingConfig {
    /// Number of steps per walk.
    pub walk_length: usize,
}

impl Default for SimpleSamplingConfig {
    fn default() -> Self {
        SimpleSamplingConfig { walk_length: 80 }
    }
}

/// A fully-specified walk application.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WalkSpec {
    /// Biased DeepWalk.
    DeepWalk(DeepWalkConfig),
    /// node2vec second-order walks.
    Node2Vec(Node2VecConfig),
    /// Personalized PageRank walks.
    Ppr(PprConfig),
    /// Unbiased fixed-length walks.
    SimpleSampling(SimpleSamplingConfig),
}

impl WalkSpec {
    /// Short name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            WalkSpec::DeepWalk(_) => "DeepWalk",
            WalkSpec::Node2Vec(_) => "node2vec",
            WalkSpec::Ppr(_) => "PPR",
            WalkSpec::SimpleSampling(_) => "SimpleSampling",
        }
    }

    /// Expected (or exact) number of steps per walk, used for sizing.
    pub fn expected_length(&self) -> usize {
        match self {
            WalkSpec::DeepWalk(c) => c.walk_length,
            WalkSpec::Node2Vec(c) => c.walk_length,
            WalkSpec::Ppr(c) => (1.0 / c.stop_probability).round() as usize,
            WalkSpec::SimpleSampling(c) => c.walk_length,
        }
    }

    /// Hard (deterministic) cap on the number of steps a walk of this spec
    /// can take: the walk length for the fixed-length applications, the
    /// `max_length` safety bound for PPR. Unlike
    /// [`expected_length`](WalkSpec::expected_length) this is always finite
    /// and is what sizing and refresh targets should be bounded by.
    pub fn max_steps(&self) -> usize {
        match self {
            WalkSpec::DeepWalk(c) => c.walk_length,
            WalkSpec::Node2Vec(c) => c.walk_length,
            WalkSpec::Ppr(c) => c.max_length,
            WalkSpec::SimpleSampling(c) => c.walk_length,
        }
    }

    /// Run one walk from `start` over `sampler`, returning the visited path
    /// (including the start vertex).
    ///
    /// Implemented by driving a [`WalkCursor`] to completion; callers that
    /// need to interleave walks with other work (the sharded walk service)
    /// drive the cursor step by step instead.
    pub fn walk<S, R>(&self, sampler: &S, start: VertexId, rng: &mut R) -> Vec<VertexId>
    where
        S: TransitionSampler + ?Sized,
        R: Rng + ?Sized,
    {
        let mut cursor = WalkCursor::new(*self, start);
        while cursor.step(sampler, rng).is_some() {}
        cursor.into_path()
    }
}

/// Resumable, frontier-friendly walker state.
///
/// A `WalkCursor` replaces the walker-owned loop: the owner of the sampling
/// structure advances the walk one transition at a time with
/// [`WalkCursor::step`], and can stop, hand the cursor to another shard, or
/// interleave graph updates between any two steps. All four applications of
/// [`WalkSpec`] — including node2vec's second-order rejection step and PPR's
/// probabilistic termination — run through the same cursor, so the sharded
/// walk service and the single-machine walker engine share per-step logic.
#[derive(Debug, Clone)]
pub struct WalkCursor {
    spec: WalkSpec,
    path: Vec<VertexId>,
    done: bool,
}

impl WalkCursor {
    /// Create a cursor positioned at `start` with no steps taken.
    pub fn new(spec: WalkSpec, start: VertexId) -> Self {
        // Preallocation hint only: clamp so huge PPR max_length values
        // don't reserve memory walks will rarely use.
        let mut path =
            Vec::with_capacity(spec.expected_length().min(spec.max_steps()).min(4095) + 1);
        path.push(start);
        WalkCursor {
            spec,
            path,
            done: false,
        }
    }

    /// The application this cursor is running.
    pub fn spec(&self) -> &WalkSpec {
        &self.spec
    }

    /// The walker's current vertex (the last vertex of the path).
    #[inline]
    pub fn current(&self) -> VertexId {
        *self.path.last().expect("path always contains the start")
    }

    /// Number of steps taken so far.
    pub fn steps_taken(&self) -> usize {
        self.path.len() - 1
    }

    /// Whether the walk has terminated (dead end, target length, or
    /// probabilistic stop).
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Whether the cursor has reached its deterministic length limit, so
    /// the next [`WalkCursor::step`] returns `None` without sampling. This
    /// is ownership-independent: a sharded scheduler uses it to finish a
    /// walker locally instead of forwarding it for a no-op step.
    /// (PPR's probabilistic stop is not covered — that requires drawing
    /// randomness.)
    pub fn at_length_limit(&self) -> bool {
        self.steps_taken() >= self.spec.max_steps()
    }

    /// The path visited so far, including the start vertex.
    pub fn path(&self) -> &[VertexId] {
        &self.path
    }

    /// Consume the cursor, returning the visited path.
    pub fn into_path(self) -> Vec<VertexId> {
        self.path
    }

    /// Advance the walk by one transition sampled from `sampler`.
    ///
    /// Returns the vertex stepped to, or `None` once the walk has
    /// terminated (after which the cursor is [`done`](WalkCursor::is_done)
    /// and further calls keep returning `None` without drawing randomness).
    ///
    /// `sampler` must own the out-edges of [`current`](WalkCursor::current);
    /// in a sharded deployment the caller routes the cursor to the owning
    /// shard before stepping.
    pub fn step<S, R>(&mut self, sampler: &S, rng: &mut R) -> Option<VertexId>
    where
        S: TransitionSampler + ?Sized,
        R: Rng + ?Sized,
    {
        if self.done {
            return None;
        }
        let current = self.current();
        let next = match self.spec {
            WalkSpec::DeepWalk(c) => (self.steps_taken() < c.walk_length)
                .then(|| sampler.sample_neighbor(current, rng))
                .flatten(),
            WalkSpec::SimpleSampling(c) => (self.steps_taken() < c.walk_length)
                .then(|| sampler.sample_neighbor(current, rng))
                .flatten(),
            WalkSpec::Ppr(c) => {
                if self.steps_taken() >= c.max_length || rng.gen::<f64>() < c.stop_probability {
                    None
                } else {
                    sampler.sample_neighbor(current, rng)
                }
            }
            WalkSpec::Node2Vec(c) => {
                if self.steps_taken() >= c.walk_length {
                    None
                } else if self.path.len() == 1 {
                    // The first step has no history: plain biased sampling.
                    sampler.sample_neighbor(current, rng)
                } else {
                    let prev = self.path[self.path.len() - 2];
                    node2vec_step(sampler, prev, current, &c, rng)
                }
            }
        };
        match next {
            Some(v) => {
                self.path.push(v);
                Some(v)
            }
            None => {
                self.done = true;
                None
            }
        }
    }
}

/// First-order biased walk of a fixed length.
pub fn fixed_length_walk<S, R>(
    sampler: &S,
    start: VertexId,
    length: usize,
    rng: &mut R,
) -> Vec<VertexId>
where
    S: TransitionSampler + ?Sized,
    R: Rng + ?Sized,
{
    WalkSpec::DeepWalk(DeepWalkConfig {
        walk_length: length,
    })
    .walk(sampler, start, rng)
}

/// Unbiased walk: each neighbor is chosen uniformly. Implemented by
/// rejection over the biased sampler would distort the distribution, so the
/// unbiased variant samples a neighbor index directly when the sampler
/// exposes degrees.
pub fn unbiased_walk<S, R>(
    sampler: &S,
    start: VertexId,
    length: usize,
    rng: &mut R,
) -> Vec<VertexId>
where
    S: TransitionSampler + ?Sized,
    R: Rng + ?Sized,
{
    // Without direct neighbor indexing on the trait, unbiased steps reuse
    // the biased sampler; for the engines in this repository "simple
    // sampling" is evaluated on graphs with unit biases, where the two
    // coincide.
    fixed_length_walk(sampler, start, length, rng)
}

/// One node2vec step from `current` with previous vertex `prev`, using
/// KnightKing-style rejection over the statically-biased sampler.
pub fn node2vec_step<S, R>(
    sampler: &S,
    prev: VertexId,
    current: VertexId,
    config: &Node2VecConfig,
    rng: &mut R,
) -> Option<VertexId>
where
    S: TransitionSampler + ?Sized,
    R: Rng + ?Sized,
{
    let inv_p = 1.0 / config.p;
    let inv_q = 1.0 / config.q;
    let max_factor = inv_p.max(1.0).max(inv_q);
    // Expected number of trials is bounded by max_factor / min_factor; cap
    // defensively to avoid pathological loops on adversarial parameters.
    for _ in 0..10_000 {
        let candidate = sampler.sample_neighbor(current, rng)?;
        let factor = if candidate == prev {
            inv_p
        } else if sampler.has_edge(prev, candidate) || sampler.has_edge(candidate, prev) {
            1.0
        } else {
            inv_q
        };
        if rng.gen::<f64>() * max_factor < factor {
            return Some(candidate);
        }
    }
    None
}

/// A full node2vec walk.
pub fn node2vec_walk<S, R>(
    sampler: &S,
    start: VertexId,
    config: Node2VecConfig,
    rng: &mut R,
) -> Vec<VertexId>
where
    S: TransitionSampler + ?Sized,
    R: Rng + ?Sized,
{
    WalkSpec::Node2Vec(config).walk(sampler, start, rng)
}

/// A personalized-PageRank walk: terminate with `stop_probability` at every
/// step.
pub fn ppr_walk<S, R>(sampler: &S, start: VertexId, config: PprConfig, rng: &mut R) -> Vec<VertexId>
where
    S: TransitionSampler + ?Sized,
    R: Rng + ?Sized,
{
    WalkSpec::Ppr(config).walk(sampler, start, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bingo_core::{BingoConfig, BingoEngine};
    use bingo_graph::dynamic_graph::running_example;
    use bingo_graph::{Bias, DynamicGraph};
    use bingo_sampling::rng::Pcg64;
    use rand::SeedableRng;

    fn engine() -> BingoEngine {
        BingoEngine::build(&running_example(), BingoConfig::default()).unwrap()
    }

    /// A small strongly-connected weighted graph (triangle plus chords) so
    /// fixed-length walks never hit a dead end.
    fn cyclic_engine() -> BingoEngine {
        let mut g = DynamicGraph::new(4);
        let edges = [
            (0, 1, 1),
            (0, 2, 3),
            (1, 2, 2),
            (1, 0, 1),
            (2, 3, 5),
            (2, 0, 1),
            (3, 0, 1),
            (3, 1, 4),
        ];
        for (s, d, w) in edges {
            g.insert_edge(s, d, Bias::from_int(w)).unwrap();
        }
        BingoEngine::build(&g, BingoConfig::default()).unwrap()
    }

    #[test]
    fn walk_spec_names_and_lengths() {
        assert_eq!(
            WalkSpec::DeepWalk(DeepWalkConfig::default()).name(),
            "DeepWalk"
        );
        assert_eq!(
            WalkSpec::Node2Vec(Node2VecConfig::default()).name(),
            "node2vec"
        );
        assert_eq!(WalkSpec::Ppr(PprConfig::default()).name(), "PPR");
        assert_eq!(
            WalkSpec::SimpleSampling(SimpleSamplingConfig::default()).name(),
            "SimpleSampling"
        );
        assert_eq!(
            WalkSpec::DeepWalk(DeepWalkConfig { walk_length: 80 }).expected_length(),
            80
        );
        assert_eq!(WalkSpec::Ppr(PprConfig::default()).expected_length(), 80);
    }

    #[test]
    fn fixed_length_walk_respects_length_and_edges() {
        let engine = cyclic_engine();
        let mut rng = Pcg64::seed_from_u64(1);
        let path = fixed_length_walk(&engine, 0, 40, &mut rng);
        assert_eq!(path.len(), 41);
        for pair in path.windows(2) {
            assert!(engine.has_edge(pair[0], pair[1]), "invalid step {pair:?}");
        }
    }

    #[test]
    fn walk_stops_at_dead_end() {
        let engine = engine();
        let mut rng = Pcg64::seed_from_u64(2);
        // Vertex 5 has no out-edges in the running example.
        let path = fixed_length_walk(&engine, 5, 10, &mut rng);
        assert_eq!(path, vec![5]);
    }

    #[test]
    fn node2vec_low_p_backtracks_more_than_high_p() {
        let engine = cyclic_engine();
        let count_backtracks = |p: f64, q: f64, seed: u64| {
            let config = Node2VecConfig {
                walk_length: 60,
                p,
                q,
            };
            let mut rng = Pcg64::seed_from_u64(seed);
            let mut backtracks = 0usize;
            for start in [0u32, 1, 2, 3] {
                for _ in 0..200 {
                    let path = node2vec_walk(&engine, start, config, &mut rng);
                    for w in path.windows(3) {
                        if w[0] == w[2] {
                            backtracks += 1;
                        }
                    }
                }
            }
            backtracks
        };
        let low_p = count_backtracks(0.1, 1.0, 7);
        let high_p = count_backtracks(10.0, 1.0, 7);
        assert!(
            low_p > high_p,
            "low p should backtrack more: {low_p} vs {high_p}"
        );
    }

    #[test]
    fn node2vec_walks_are_valid_paths() {
        let engine = cyclic_engine();
        let mut rng = Pcg64::seed_from_u64(9);
        let path = node2vec_walk(&engine, 0, Node2VecConfig::default(), &mut rng);
        assert!(path.len() > 2);
        for pair in path.windows(2) {
            assert!(engine.has_edge(pair[0], pair[1]));
        }
    }

    #[test]
    fn ppr_walk_length_matches_expectation() {
        let engine = cyclic_engine();
        let config = PprConfig {
            stop_probability: 0.1,
            max_length: 1000,
        };
        let mut rng = Pcg64::seed_from_u64(3);
        let mut total = 0usize;
        let n = 20_000;
        for _ in 0..n {
            total += ppr_walk(&engine, 0, config, &mut rng).len() - 1;
        }
        let mean = total as f64 / n as f64;
        // Expected number of steps before termination is (1 - s) / s = 9.
        assert!((mean - 9.0).abs() < 0.3, "mean walk length {mean}");
    }

    #[test]
    fn ppr_walk_respects_max_length() {
        let engine = cyclic_engine();
        let config = PprConfig {
            stop_probability: 0.0,
            max_length: 25,
        };
        let mut rng = Pcg64::seed_from_u64(4);
        let path = ppr_walk(&engine, 0, config, &mut rng);
        assert_eq!(path.len(), 26);
    }

    #[test]
    fn cursor_stepping_matches_whole_walk_for_a_fixed_seed() {
        let engine = cyclic_engine();
        for spec in [
            WalkSpec::DeepWalk(DeepWalkConfig { walk_length: 12 }),
            WalkSpec::SimpleSampling(SimpleSamplingConfig { walk_length: 12 }),
            WalkSpec::Node2Vec(Node2VecConfig {
                walk_length: 12,
                p: 0.5,
                q: 2.0,
            }),
            WalkSpec::Ppr(PprConfig {
                stop_probability: 0.05,
                max_length: 40,
            }),
        ] {
            let mut rng_walk = Pcg64::seed_from_u64(21);
            let whole = spec.walk(&engine, 0, &mut rng_walk);

            let mut rng_cursor = Pcg64::seed_from_u64(21);
            let mut cursor = WalkCursor::new(spec, 0);
            assert_eq!(cursor.current(), 0);
            assert_eq!(cursor.steps_taken(), 0);
            while let Some(next) = cursor.step(&engine, &mut rng_cursor) {
                assert_eq!(cursor.current(), next);
            }
            assert!(cursor.is_done());
            // Terminated cursors stay terminated without consuming entropy.
            assert_eq!(cursor.step(&engine, &mut rng_cursor), None);
            assert_eq!(cursor.path(), whole.as_slice(), "{}", spec.name());
            assert_eq!(cursor.into_path(), whole);
        }
    }

    #[test]
    fn cursor_respects_walk_length_and_dead_ends() {
        let engine = engine();
        // Vertex 5 has no out-edges: the cursor terminates immediately.
        let mut rng = Pcg64::seed_from_u64(3);
        let mut cursor = WalkCursor::new(WalkSpec::DeepWalk(DeepWalkConfig { walk_length: 4 }), 5);
        assert_eq!(cursor.step(&engine, &mut rng), None);
        assert!(cursor.is_done());
        assert_eq!(cursor.path(), &[5]);

        // A cyclic graph: exactly walk_length steps are taken.
        let engine = cyclic_engine();
        let mut cursor = WalkCursor::new(WalkSpec::DeepWalk(DeepWalkConfig { walk_length: 4 }), 0);
        let mut steps = 0;
        while cursor.step(&engine, &mut rng).is_some() {
            steps += 1;
        }
        assert_eq!(steps, 4);
        assert_eq!(cursor.steps_taken(), 4);
    }

    #[test]
    fn walk_spec_dispatches_to_the_right_application() {
        let engine = cyclic_engine();
        let mut rng = Pcg64::seed_from_u64(5);
        for spec in [
            WalkSpec::DeepWalk(DeepWalkConfig { walk_length: 10 }),
            WalkSpec::Node2Vec(Node2VecConfig {
                walk_length: 10,
                p: 0.5,
                q: 2.0,
            }),
            WalkSpec::Ppr(PprConfig::default()),
            WalkSpec::SimpleSampling(SimpleSamplingConfig { walk_length: 10 }),
        ] {
            let path = spec.walk(&engine, 1, &mut rng);
            assert!(!path.is_empty());
            assert_eq!(path[0], 1);
        }
    }
}

//! Built-in walk applications (§2.2, §6.1) and the resumable walk cursor.
//!
//! * **Biased DeepWalk** — first-order walks of a fixed length; each step
//!   samples a neighbor proportionally to the edge bias.
//! * **node2vec** — second-order walks: the transition bias is additionally
//!   multiplied by `1/p`, `1` or `1/q` depending on the relation between the
//!   previous vertex and the candidate (Equation 1), applied by
//!   KnightKing-style rejection.
//! * **Personalized PageRank (PPR)** — walks terminate at every step with a
//!   fixed probability (1/80 in the evaluation, for an expected length of
//!   80).
//! * **Simple sampling** — unbiased fixed-length walks (the
//!   `random_walk_simple_sampling` kernel of §6).
//!
//! The walk *semantics* live in [`model`](crate::model) as
//! [`WalkModel`](crate::model::WalkModel) implementations; [`WalkSpec`] is
//! a thin, serializable constructor layer
//! that names a built-in model and its parameters. Execution — whether a
//! whole walk ([`WalkSpec::walk`]), one step at a time ([`WalkCursor`]), a
//! parallel pass ([`WalkEngine`](crate::WalkEngine)) or the sharded service
//! — always goes through the trait, so custom models plug in everywhere a
//! spec does.

use crate::model::{
    ContextRequirement, DeepWalkModel, Node2VecModel, PprModel, SharedWalkModel,
    SimpleSamplingModel, Transition, WalkState,
};
use crate::TransitionSampler;
use bingo_graph::VertexId;
use rand::{Rng, RngCore};
use std::sync::Arc;

/// Configuration of biased DeepWalk.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeepWalkConfig {
    /// Number of steps per walk (the paper uses 80).
    pub walk_length: usize,
}

impl Default for DeepWalkConfig {
    fn default() -> Self {
        DeepWalkConfig { walk_length: 80 }
    }
}

/// Configuration of node2vec.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Node2VecConfig {
    /// Number of steps per walk.
    pub walk_length: usize,
    /// Return parameter `p` (the paper uses 0.5).
    pub p: f64,
    /// In-out parameter `q` (the paper uses 2.0).
    pub q: f64,
}

impl Default for Node2VecConfig {
    fn default() -> Self {
        Node2VecConfig {
            walk_length: 80,
            p: 0.5,
            q: 2.0,
        }
    }
}

/// Configuration of personalized PageRank walks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PprConfig {
    /// Per-step termination probability (the paper uses 1/80).
    pub stop_probability: f64,
    /// Hard cap on the walk length to bound worst-case work.
    pub max_length: usize,
}

impl Default for PprConfig {
    fn default() -> Self {
        PprConfig {
            stop_probability: 1.0 / 80.0,
            max_length: 800,
        }
    }
}

/// Configuration of unbiased simple-sampling walks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimpleSamplingConfig {
    /// Number of steps per walk.
    pub walk_length: usize,
}

impl Default for SimpleSamplingConfig {
    fn default() -> Self {
        SimpleSamplingConfig { walk_length: 80 }
    }
}

/// A fully-specified built-in walk application.
///
/// This is the constructor layer over the open [`WalkModel`] API: each
/// variant names a built-in model plus its parameters, and
/// [`WalkSpec::to_model`] instantiates it. Code that executes walks never
/// matches on this enum — it drives the model returned by `to_model`.
///
/// [`WalkModel`]: crate::model::WalkModel
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WalkSpec {
    /// Biased DeepWalk.
    DeepWalk(DeepWalkConfig),
    /// node2vec second-order walks.
    Node2Vec(Node2VecConfig),
    /// Personalized PageRank walks.
    Ppr(PprConfig),
    /// Unbiased fixed-length walks.
    SimpleSampling(SimpleSamplingConfig),
}

impl WalkSpec {
    /// Instantiate the built-in [`WalkModel`](crate::model::WalkModel) this
    /// spec describes — the single place where the enum is interpreted.
    pub fn to_model(&self) -> SharedWalkModel {
        match *self {
            WalkSpec::DeepWalk(config) => Arc::new(DeepWalkModel { config }),
            WalkSpec::Node2Vec(config) => Arc::new(Node2VecModel { config }),
            WalkSpec::Ppr(config) => Arc::new(PprModel { config }),
            WalkSpec::SimpleSampling(config) => Arc::new(SimpleSamplingModel { config }),
        }
    }

    /// Short name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            WalkSpec::DeepWalk(_) => "DeepWalk",
            WalkSpec::Node2Vec(_) => "node2vec",
            WalkSpec::Ppr(_) => "PPR",
            WalkSpec::SimpleSampling(_) => "SimpleSampling",
        }
    }

    /// Expected (or exact) number of steps per walk, used for sizing.
    ///
    /// Allocation-free mirror of the model's
    /// [`expected_length`](crate::model::WalkModel::expected_length) (the
    /// `spec_names_match_model_names` test keeps the two in lock step).
    pub fn expected_length(&self) -> usize {
        match self {
            WalkSpec::DeepWalk(c) => c.walk_length,
            WalkSpec::Node2Vec(c) => c.walk_length,
            WalkSpec::Ppr(c) => (1.0 / c.stop_probability).round() as usize,
            WalkSpec::SimpleSampling(c) => c.walk_length,
        }
    }

    /// Hard (deterministic) cap on the number of steps a walk of this spec
    /// can take. Unlike [`expected_length`](WalkSpec::expected_length) this
    /// is always finite and is what sizing and refresh targets should be
    /// bounded by.
    pub fn max_steps(&self) -> usize {
        match self {
            WalkSpec::DeepWalk(c) => c.walk_length,
            WalkSpec::Node2Vec(c) => c.walk_length,
            WalkSpec::Ppr(c) => c.max_length,
            WalkSpec::SimpleSampling(c) => c.walk_length,
        }
    }

    /// Run one walk from `start` over `sampler`, returning the visited path
    /// (including the start vertex).
    ///
    /// Implemented by driving a [`WalkCursor`] to completion; callers that
    /// need to interleave walks with other work (the sharded walk service)
    /// drive the cursor step by step instead.
    pub fn walk<S, R>(&self, sampler: &S, start: VertexId, rng: &mut R) -> Vec<VertexId>
    where
        S: TransitionSampler + ?Sized,
        R: Rng + ?Sized,
    {
        let mut cursor = WalkCursor::new(*self, start);
        while cursor.step(sampler, rng).is_some() {}
        cursor.into_path()
    }
}

/// Resumable, frontier-friendly walker state.
///
/// A `WalkCursor` replaces the walker-owned loop: the owner of the sampling
/// structure advances the walk one transition at a time with
/// [`WalkCursor::step`], and can stop, hand the cursor to another shard, or
/// interleave graph updates between any two steps. Every application —
/// built-in or user-defined — runs through the same cursor by implementing
/// [`WalkModel`](crate::model::WalkModel), so the sharded walk service and
/// the single-machine walker engine share per-step logic.
#[derive(Debug, Clone)]
pub struct WalkCursor {
    model: SharedWalkModel,
    state: WalkState,
    path: Vec<VertexId>,
    done: bool,
}

impl WalkCursor {
    /// Create a cursor positioned at `start` running a built-in spec.
    pub fn new(spec: WalkSpec, start: VertexId) -> Self {
        Self::with_model(spec.to_model(), start)
    }

    /// Create a cursor positioned at `start` running an arbitrary model.
    pub fn with_model(model: SharedWalkModel, start: VertexId) -> Self {
        // Preallocation hint only: clamp so huge PPR max_length values
        // don't reserve memory walks will rarely use.
        let mut path =
            Vec::with_capacity(model.expected_length().min(model.max_steps()).min(4095) + 1);
        path.push(start);
        let state = model.init(start);
        WalkCursor {
            model,
            state,
            path,
            done: false,
        }
    }

    /// Rebuild a mid-walk cursor from a previously visited path — the
    /// receiving side of a serialized cross-shard hop. The walker resumes
    /// at the last path vertex with the second-to-last as its previous
    /// vertex and `path.len() - 1` steps taken, exactly the state an
    /// in-process forward would have handed over. Returns `None` when
    /// `path` is empty (a walker always has at least its start vertex).
    ///
    /// Forwarded walkers are never done (a shard finishes a walker locally
    /// rather than forwarding it), so the rebuilt cursor is live.
    pub fn resume(model: SharedWalkModel, path: Vec<VertexId>) -> Option<Self> {
        let mut state = model.init(*path.first()?);
        for &v in &path[1..] {
            state.advance(v);
        }
        debug_assert_eq!(Some(state.current()), path.last().copied());
        debug_assert_eq!(state.steps_taken(), path.len() - 1);
        Some(WalkCursor {
            model,
            state,
            path,
            done: false,
        })
    }

    /// The model this cursor is running.
    pub fn model(&self) -> &SharedWalkModel {
        &self.model
    }

    /// The cross-shard context the model needs with a forwarded walker.
    pub fn required_context(&self) -> ContextRequirement {
        self.model.required_context()
    }

    /// The walker's model-visible state (current/previous vertex, carried
    /// context).
    pub fn state(&self) -> &WalkState {
        &self.state
    }

    /// Drain the state's missing-context fault counter (see
    /// [`WalkState::take_context_misses`]).
    pub fn take_context_misses(&self) -> u64 {
        self.state.take_context_misses()
    }

    /// Attach a forwarded-context membership snapshot of the previous
    /// vertex's out-adjacency, captured by the shard that owns it. Returns
    /// `false` (and attaches nothing) when the walk has no previous vertex
    /// yet or when the snapshot describes a different vertex — attaching a
    /// mismatched snapshot would only surface later as a membership fault.
    pub fn set_forward_context(&mut self, context: crate::model::CarriedContext) -> bool {
        if self.state.prev() != Some(context.vertex) {
            return false;
        }
        self.state.set_carried(context);
        true
    }

    /// The walker's current vertex (the last vertex of the path).
    #[inline]
    pub fn current(&self) -> VertexId {
        self.state.current()
    }

    /// Number of steps taken so far.
    pub fn steps_taken(&self) -> usize {
        self.state.steps_taken()
    }

    /// Whether the walk has terminated (dead end, target length, or
    /// probabilistic stop).
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Whether the cursor has reached its deterministic length limit, so
    /// the next [`WalkCursor::step`] returns `None` without sampling. This
    /// is ownership-independent: a sharded scheduler uses it to finish a
    /// walker locally instead of forwarding it for a no-op step.
    /// (Probabilistic stops — PPR — are not covered: those require drawing
    /// randomness.)
    pub fn at_length_limit(&self) -> bool {
        self.steps_taken() >= self.model.max_steps()
    }

    /// The path visited so far, including the start vertex.
    pub fn path(&self) -> &[VertexId] {
        &self.path
    }

    /// Consume the cursor, returning the visited path.
    pub fn into_path(self) -> Vec<VertexId> {
        self.path
    }

    /// Advance the walk by one transition produced by the model.
    ///
    /// Returns the vertex stepped to, or `None` once the walk has
    /// terminated (after which the cursor is [`done`](WalkCursor::is_done)
    /// and further calls keep returning `None` without drawing randomness).
    ///
    /// `sampler` must own the out-edges of [`current`](WalkCursor::current);
    /// in a sharded deployment the caller routes the cursor to the owning
    /// shard before stepping.
    pub fn step<S, R>(&mut self, sampler: &S, rng: &mut R) -> Option<VertexId>
    where
        S: TransitionSampler + ?Sized,
        R: Rng + ?Sized,
    {
        if self.done {
            return None;
        }
        // Erase the generics at the trait boundary: `&mut R` is itself an
        // RngCore (and Sized), so it coerces to `&mut dyn RngCore` even
        // when `R` is unsized; `SamplerBridge` does the same for `S`.
        let mut reborrow: &mut R = rng;
        let dyn_rng: &mut dyn RngCore = &mut reborrow;
        let bridge = crate::model::SamplerBridge(sampler);
        match self.model.step(&self.state, &bridge, dyn_rng) {
            Transition::Step(next) => {
                self.state.advance(next);
                self.path.push(next);
                Some(next)
            }
            Transition::Terminate => {
                self.done = true;
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bingo_core::{BingoConfig, BingoEngine};
    use bingo_graph::dynamic_graph::running_example;
    use bingo_graph::{Bias, DynamicGraph};
    use bingo_sampling::rng::Pcg64;
    use rand::SeedableRng;

    fn engine() -> BingoEngine {
        BingoEngine::build(&running_example(), BingoConfig::default()).unwrap()
    }

    /// A small strongly-connected weighted graph (triangle plus chords) so
    /// fixed-length walks never hit a dead end.
    fn cyclic_engine() -> BingoEngine {
        let mut g = DynamicGraph::new(4);
        let edges = [
            (0, 1, 1),
            (0, 2, 3),
            (1, 2, 2),
            (1, 0, 1),
            (2, 3, 5),
            (2, 0, 1),
            (3, 0, 1),
            (3, 1, 4),
        ];
        for (s, d, w) in edges {
            g.insert_edge(s, d, Bias::from_int(w)).unwrap();
        }
        BingoEngine::build(&g, BingoConfig::default()).unwrap()
    }

    #[test]
    fn walk_spec_names_and_lengths() {
        assert_eq!(
            WalkSpec::DeepWalk(DeepWalkConfig::default()).name(),
            "DeepWalk"
        );
        assert_eq!(
            WalkSpec::Node2Vec(Node2VecConfig::default()).name(),
            "node2vec"
        );
        assert_eq!(WalkSpec::Ppr(PprConfig::default()).name(), "PPR");
        assert_eq!(
            WalkSpec::SimpleSampling(SimpleSamplingConfig::default()).name(),
            "SimpleSampling"
        );
        assert_eq!(
            WalkSpec::DeepWalk(DeepWalkConfig { walk_length: 80 }).expected_length(),
            80
        );
        assert_eq!(WalkSpec::Ppr(PprConfig::default()).expected_length(), 80);
    }

    #[test]
    fn resume_rebuilds_mid_walk_cursor_state() {
        let model = WalkSpec::DeepWalk(DeepWalkConfig { walk_length: 10 }).to_model();
        assert!(
            WalkCursor::resume(model.clone(), vec![]).is_none(),
            "an empty path is not a walker"
        );
        let fresh = WalkCursor::resume(model.clone(), vec![3]).expect("single-vertex path");
        assert_eq!(fresh.current(), 3);
        assert_eq!(fresh.steps_taken(), 0);
        assert_eq!(fresh.state().prev(), None);
        assert!(!fresh.is_done());
        let mid = WalkCursor::resume(model, vec![3, 1, 2]).expect("mid-walk path");
        assert_eq!(mid.current(), 2);
        assert_eq!(mid.state().prev(), Some(1));
        assert_eq!(mid.steps_taken(), 2);
        assert_eq!(mid.path(), &[3, 1, 2]);

        // A resumed cursor continues exactly like the original: same model,
        // same state, same RNG stream → same next step.
        let engine = cyclic_engine();
        let mut original =
            WalkCursor::new(WalkSpec::DeepWalk(DeepWalkConfig { walk_length: 6 }), 0);
        let mut rng = Pcg64::seed_from_u64(21);
        original.step(&engine, &mut rng);
        original.step(&engine, &mut rng);
        let mut resumed = WalkCursor::resume(
            WalkSpec::DeepWalk(DeepWalkConfig { walk_length: 6 }).to_model(),
            original.path().to_vec(),
        )
        .expect("resume");
        let mut rng_a = Pcg64::seed_from_u64(99);
        let mut rng_b = rng_a.clone();
        assert_eq!(
            original.step(&engine, &mut rng_a),
            resumed.step(&engine, &mut rng_b)
        );
        assert_eq!(original.path(), resumed.path());
    }

    #[test]
    fn spec_names_match_model_names() {
        for spec in [
            WalkSpec::DeepWalk(DeepWalkConfig::default()),
            WalkSpec::Node2Vec(Node2VecConfig::default()),
            WalkSpec::Ppr(PprConfig::default()),
            WalkSpec::SimpleSampling(SimpleSamplingConfig::default()),
        ] {
            let model = spec.to_model();
            assert_eq!(spec.name(), model.name());
            assert_eq!(spec.expected_length(), model.expected_length());
            assert_eq!(spec.max_steps(), model.max_steps());
        }
    }

    #[test]
    fn fixed_length_walk_respects_length_and_edges() {
        let engine = cyclic_engine();
        let mut rng = Pcg64::seed_from_u64(1);
        let path =
            WalkSpec::DeepWalk(DeepWalkConfig { walk_length: 40 }).walk(&engine, 0, &mut rng);
        assert_eq!(path.len(), 41);
        for pair in path.windows(2) {
            assert!(engine.has_edge(pair[0], pair[1]), "invalid step {pair:?}");
        }
    }

    #[test]
    fn walk_stops_at_dead_end() {
        let engine = engine();
        let mut rng = Pcg64::seed_from_u64(2);
        // Vertex 5 has no out-edges in the running example.
        let path =
            WalkSpec::DeepWalk(DeepWalkConfig { walk_length: 10 }).walk(&engine, 5, &mut rng);
        assert_eq!(path, vec![5]);
    }

    #[test]
    fn node2vec_low_p_backtracks_more_than_high_p() {
        let engine = cyclic_engine();
        let count_backtracks = |p: f64, q: f64, seed: u64| {
            let spec = WalkSpec::Node2Vec(Node2VecConfig {
                walk_length: 60,
                p,
                q,
            });
            let mut rng = Pcg64::seed_from_u64(seed);
            let mut backtracks = 0usize;
            for start in [0u32, 1, 2, 3] {
                for _ in 0..200 {
                    let path = spec.walk(&engine, start, &mut rng);
                    for w in path.windows(3) {
                        if w[0] == w[2] {
                            backtracks += 1;
                        }
                    }
                }
            }
            backtracks
        };
        let low_p = count_backtracks(0.1, 1.0, 7);
        let high_p = count_backtracks(10.0, 1.0, 7);
        assert!(
            low_p > high_p,
            "low p should backtrack more: {low_p} vs {high_p}"
        );
    }

    #[test]
    fn node2vec_walks_are_valid_paths() {
        let engine = cyclic_engine();
        let mut rng = Pcg64::seed_from_u64(9);
        let path = WalkSpec::Node2Vec(Node2VecConfig::default()).walk(&engine, 0, &mut rng);
        assert!(path.len() > 2);
        for pair in path.windows(2) {
            assert!(engine.has_edge(pair[0], pair[1]));
        }
    }

    #[test]
    fn ppr_walk_length_matches_expectation() {
        let engine = cyclic_engine();
        let spec = WalkSpec::Ppr(PprConfig {
            stop_probability: 0.1,
            max_length: 1000,
        });
        let mut rng = Pcg64::seed_from_u64(3);
        let mut total = 0usize;
        let n = 20_000;
        for _ in 0..n {
            total += spec.walk(&engine, 0, &mut rng).len() - 1;
        }
        let mean = total as f64 / n as f64;
        // Expected number of steps before termination is (1 - s) / s = 9.
        assert!((mean - 9.0).abs() < 0.3, "mean walk length {mean}");
    }

    #[test]
    fn ppr_walk_respects_max_length() {
        let engine = cyclic_engine();
        let spec = WalkSpec::Ppr(PprConfig {
            stop_probability: 0.0,
            max_length: 25,
        });
        let mut rng = Pcg64::seed_from_u64(4);
        let path = spec.walk(&engine, 0, &mut rng);
        assert_eq!(path.len(), 26);
    }

    #[test]
    fn cursor_stepping_matches_whole_walk_for_a_fixed_seed() {
        let engine = cyclic_engine();
        for spec in [
            WalkSpec::DeepWalk(DeepWalkConfig { walk_length: 12 }),
            WalkSpec::SimpleSampling(SimpleSamplingConfig { walk_length: 12 }),
            WalkSpec::Node2Vec(Node2VecConfig {
                walk_length: 12,
                p: 0.5,
                q: 2.0,
            }),
            WalkSpec::Ppr(PprConfig {
                stop_probability: 0.05,
                max_length: 40,
            }),
        ] {
            let mut rng_walk = Pcg64::seed_from_u64(21);
            let whole = spec.walk(&engine, 0, &mut rng_walk);

            let mut rng_cursor = Pcg64::seed_from_u64(21);
            let mut cursor = WalkCursor::new(spec, 0);
            assert_eq!(cursor.current(), 0);
            assert_eq!(cursor.steps_taken(), 0);
            while let Some(next) = cursor.step(&engine, &mut rng_cursor) {
                assert_eq!(cursor.current(), next);
            }
            assert!(cursor.is_done());
            // Terminated cursors stay terminated without consuming entropy.
            assert_eq!(cursor.step(&engine, &mut rng_cursor), None);
            assert_eq!(cursor.path(), whole.as_slice(), "{}", spec.name());
            assert_eq!(cursor.into_path(), whole);
        }
    }

    #[test]
    fn boxed_model_walks_match_enum_spec_walks_step_for_step() {
        // Trait-object safety: a cursor over `Arc<dyn WalkModel>` built by
        // hand must reproduce the spec-built cursor exactly under the same
        // seed, for every built-in application.
        use crate::model::{DeepWalkModel, Node2VecModel, PprModel, SimpleSamplingModel};
        let engine = cyclic_engine();
        let cases: Vec<(WalkSpec, SharedWalkModel)> = vec![
            (
                WalkSpec::DeepWalk(DeepWalkConfig { walk_length: 15 }),
                Arc::new(DeepWalkModel {
                    config: DeepWalkConfig { walk_length: 15 },
                }),
            ),
            (
                WalkSpec::Node2Vec(Node2VecConfig {
                    walk_length: 15,
                    p: 0.25,
                    q: 4.0,
                }),
                Arc::new(Node2VecModel {
                    config: Node2VecConfig {
                        walk_length: 15,
                        p: 0.25,
                        q: 4.0,
                    },
                }),
            ),
            (
                WalkSpec::Ppr(PprConfig {
                    stop_probability: 0.1,
                    max_length: 30,
                }),
                Arc::new(PprModel {
                    config: PprConfig {
                        stop_probability: 0.1,
                        max_length: 30,
                    },
                }),
            ),
            (
                WalkSpec::SimpleSampling(SimpleSamplingConfig { walk_length: 15 }),
                Arc::new(SimpleSamplingModel {
                    config: SimpleSamplingConfig { walk_length: 15 },
                }),
            ),
        ];
        for (spec, model) in cases {
            let mut rng_spec = Pcg64::seed_from_u64(0xB0);
            let mut rng_model = Pcg64::seed_from_u64(0xB0);
            let mut spec_cursor = WalkCursor::new(spec, 1);
            let mut model_cursor = WalkCursor::with_model(model, 1);
            loop {
                let a = spec_cursor.step(&engine, &mut rng_spec);
                let b = model_cursor.step(&engine, &mut rng_model);
                assert_eq!(a, b, "{} diverged", spec.name());
                if a.is_none() {
                    break;
                }
            }
            assert_eq!(spec_cursor.path(), model_cursor.path());
        }
    }

    #[test]
    fn cursor_respects_walk_length_and_dead_ends() {
        let engine = engine();
        // Vertex 5 has no out-edges: the cursor terminates immediately.
        let mut rng = Pcg64::seed_from_u64(3);
        let mut cursor = WalkCursor::new(WalkSpec::DeepWalk(DeepWalkConfig { walk_length: 4 }), 5);
        assert_eq!(cursor.step(&engine, &mut rng), None);
        assert!(cursor.is_done());
        assert_eq!(cursor.path(), &[5]);

        // A cyclic graph: exactly walk_length steps are taken.
        let engine = cyclic_engine();
        let mut cursor = WalkCursor::new(WalkSpec::DeepWalk(DeepWalkConfig { walk_length: 4 }), 0);
        let mut steps = 0;
        while cursor.step(&engine, &mut rng).is_some() {
            steps += 1;
        }
        assert_eq!(steps, 4);
        assert_eq!(cursor.steps_taken(), 4);
        assert!(cursor.at_length_limit());
    }

    #[test]
    fn cursor_tracks_model_state_and_forward_context() {
        let engine = cyclic_engine();
        let mut rng = Pcg64::seed_from_u64(8);
        let mut cursor = WalkCursor::new(WalkSpec::Node2Vec(Node2VecConfig::default()), 0);
        assert_eq!(
            cursor.required_context(),
            ContextRequirement::PreviousAdjacency
        );
        use crate::model::CarriedContext;
        // No previous vertex yet: context cannot attach.
        assert!(!cursor.set_forward_context(CarriedContext::exact(0, vec![1, 2])));
        cursor.step(&engine, &mut rng).unwrap();
        // A snapshot for the wrong vertex is refused too.
        assert!(!cursor.set_forward_context(CarriedContext::exact(99, vec![1, 2])));
        assert!(cursor.set_forward_context(CarriedContext::exact(0, vec![1, 2])));
        let ctx = cursor.state().carried_context().unwrap();
        assert_eq!(ctx.vertex, 0);
        assert_eq!(ctx.membership.decoded(), Some(vec![1, 2]));
        // The next locally-sampled step drops the single-use snapshot.
        cursor.step(&engine, &mut rng).unwrap();
        assert!(cursor.state().carried_context().is_none());
    }

    #[test]
    fn walk_spec_dispatches_to_the_right_application() {
        let engine = cyclic_engine();
        let mut rng = Pcg64::seed_from_u64(5);
        for spec in [
            WalkSpec::DeepWalk(DeepWalkConfig { walk_length: 10 }),
            WalkSpec::Node2Vec(Node2VecConfig {
                walk_length: 10,
                p: 0.5,
                q: 2.0,
            }),
            WalkSpec::Ppr(PprConfig::default()),
            WalkSpec::SimpleSampling(SimpleSamplingConfig { walk_length: 10 }),
        ] {
            let path = spec.walk(&engine, 1, &mut rng);
            assert!(!path.is_empty());
            assert_eq!(path[0], 1);
        }
    }
}

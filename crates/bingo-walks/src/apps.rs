//! Random-walk applications (§2.2, §6.1).
//!
//! * **Biased DeepWalk** — first-order walks of a fixed length; each step
//!   samples a neighbor proportionally to the edge bias.
//! * **node2vec** — second-order walks: the transition bias is additionally
//!   multiplied by `1/p`, `1` or `1/q` depending on the distance between the
//!   previous vertex and the candidate (Equation 1). Following KnightKing
//!   (and the paper, which adopts KnightKing's approach for second-order
//!   applications), the second-order factor is applied by rejection: sample
//!   a candidate from the static bias distribution, then accept it with
//!   probability `f(w, v) / max(f)`.
//! * **Personalized PageRank (PPR)** — walks terminate at every step with a
//!   fixed probability (1/80 in the evaluation, for an expected length of
//!   80).
//! * **Simple sampling** — unbiased fixed-length walks (the
//!   `random_walk_simple_sampling` kernel of §6).

use crate::TransitionSampler;
use bingo_graph::VertexId;
use rand::Rng;

/// Configuration of biased DeepWalk.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeepWalkConfig {
    /// Number of steps per walk (the paper uses 80).
    pub walk_length: usize,
}

impl Default for DeepWalkConfig {
    fn default() -> Self {
        DeepWalkConfig { walk_length: 80 }
    }
}

/// Configuration of node2vec.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Node2VecConfig {
    /// Number of steps per walk.
    pub walk_length: usize,
    /// Return parameter `p` (the paper uses 0.5).
    pub p: f64,
    /// In-out parameter `q` (the paper uses 2.0).
    pub q: f64,
}

impl Default for Node2VecConfig {
    fn default() -> Self {
        Node2VecConfig {
            walk_length: 80,
            p: 0.5,
            q: 2.0,
        }
    }
}

/// Configuration of personalized PageRank walks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PprConfig {
    /// Per-step termination probability (the paper uses 1/80).
    pub stop_probability: f64,
    /// Hard cap on the walk length to bound worst-case work.
    pub max_length: usize,
}

impl Default for PprConfig {
    fn default() -> Self {
        PprConfig {
            stop_probability: 1.0 / 80.0,
            max_length: 800,
        }
    }
}

/// Configuration of unbiased simple-sampling walks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimpleSamplingConfig {
    /// Number of steps per walk.
    pub walk_length: usize,
}

impl Default for SimpleSamplingConfig {
    fn default() -> Self {
        SimpleSamplingConfig { walk_length: 80 }
    }
}

/// A fully-specified walk application.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WalkSpec {
    /// Biased DeepWalk.
    DeepWalk(DeepWalkConfig),
    /// node2vec second-order walks.
    Node2Vec(Node2VecConfig),
    /// Personalized PageRank walks.
    Ppr(PprConfig),
    /// Unbiased fixed-length walks.
    SimpleSampling(SimpleSamplingConfig),
}

impl WalkSpec {
    /// Short name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            WalkSpec::DeepWalk(_) => "DeepWalk",
            WalkSpec::Node2Vec(_) => "node2vec",
            WalkSpec::Ppr(_) => "PPR",
            WalkSpec::SimpleSampling(_) => "SimpleSampling",
        }
    }

    /// Expected (or exact) number of steps per walk, used for sizing.
    pub fn expected_length(&self) -> usize {
        match self {
            WalkSpec::DeepWalk(c) => c.walk_length,
            WalkSpec::Node2Vec(c) => c.walk_length,
            WalkSpec::Ppr(c) => (1.0 / c.stop_probability).round() as usize,
            WalkSpec::SimpleSampling(c) => c.walk_length,
        }
    }

    /// Run one walk from `start` over `sampler`, returning the visited path
    /// (including the start vertex).
    pub fn walk<S, R>(&self, sampler: &S, start: VertexId, rng: &mut R) -> Vec<VertexId>
    where
        S: TransitionSampler + ?Sized,
        R: Rng + ?Sized,
    {
        match *self {
            WalkSpec::DeepWalk(config) => fixed_length_walk(sampler, start, config.walk_length, rng),
            WalkSpec::SimpleSampling(config) => {
                unbiased_walk(sampler, start, config.walk_length, rng)
            }
            WalkSpec::Node2Vec(config) => node2vec_walk(sampler, start, config, rng),
            WalkSpec::Ppr(config) => ppr_walk(sampler, start, config, rng),
        }
    }
}

/// First-order biased walk of a fixed length.
pub fn fixed_length_walk<S, R>(sampler: &S, start: VertexId, length: usize, rng: &mut R) -> Vec<VertexId>
where
    S: TransitionSampler + ?Sized,
    R: Rng + ?Sized,
{
    let mut path = Vec::with_capacity(length + 1);
    path.push(start);
    let mut current = start;
    for _ in 0..length {
        match sampler.sample_neighbor(current, rng) {
            Some(next) => {
                path.push(next);
                current = next;
            }
            None => break,
        }
    }
    path
}

/// Unbiased walk: each neighbor is chosen uniformly. Implemented by
/// rejection over the biased sampler would distort the distribution, so the
/// unbiased variant samples a neighbor index directly when the sampler
/// exposes degrees.
pub fn unbiased_walk<S, R>(sampler: &S, start: VertexId, length: usize, rng: &mut R) -> Vec<VertexId>
where
    S: TransitionSampler + ?Sized,
    R: Rng + ?Sized,
{
    // Without direct neighbor indexing on the trait, unbiased steps reuse
    // the biased sampler; for the engines in this repository "simple
    // sampling" is evaluated on graphs with unit biases, where the two
    // coincide.
    fixed_length_walk(sampler, start, length, rng)
}

/// One node2vec step from `current` with previous vertex `prev`, using
/// KnightKing-style rejection over the statically-biased sampler.
pub fn node2vec_step<S, R>(
    sampler: &S,
    prev: VertexId,
    current: VertexId,
    config: &Node2VecConfig,
    rng: &mut R,
) -> Option<VertexId>
where
    S: TransitionSampler + ?Sized,
    R: Rng + ?Sized,
{
    let inv_p = 1.0 / config.p;
    let inv_q = 1.0 / config.q;
    let max_factor = inv_p.max(1.0).max(inv_q);
    // Expected number of trials is bounded by max_factor / min_factor; cap
    // defensively to avoid pathological loops on adversarial parameters.
    for _ in 0..10_000 {
        let candidate = sampler.sample_neighbor(current, rng)?;
        let factor = if candidate == prev {
            inv_p
        } else if sampler.has_edge(prev, candidate) || sampler.has_edge(candidate, prev) {
            1.0
        } else {
            inv_q
        };
        if rng.gen::<f64>() * max_factor < factor {
            return Some(candidate);
        }
    }
    None
}

/// A full node2vec walk.
pub fn node2vec_walk<S, R>(
    sampler: &S,
    start: VertexId,
    config: Node2VecConfig,
    rng: &mut R,
) -> Vec<VertexId>
where
    S: TransitionSampler + ?Sized,
    R: Rng + ?Sized,
{
    let mut path = Vec::with_capacity(config.walk_length + 1);
    path.push(start);
    // The first step has no history: plain biased sampling.
    let first = match sampler.sample_neighbor(start, rng) {
        Some(v) => v,
        None => return path,
    };
    path.push(first);
    let mut prev = start;
    let mut current = first;
    for _ in 1..config.walk_length {
        match node2vec_step(sampler, prev, current, &config, rng) {
            Some(next) => {
                path.push(next);
                prev = current;
                current = next;
            }
            None => break,
        }
    }
    path
}

/// A personalized-PageRank walk: terminate with `stop_probability` at every
/// step.
pub fn ppr_walk<S, R>(sampler: &S, start: VertexId, config: PprConfig, rng: &mut R) -> Vec<VertexId>
where
    S: TransitionSampler + ?Sized,
    R: Rng + ?Sized,
{
    let mut path = Vec::new();
    path.push(start);
    let mut current = start;
    for _ in 0..config.max_length {
        if rng.gen::<f64>() < config.stop_probability {
            break;
        }
        match sampler.sample_neighbor(current, rng) {
            Some(next) => {
                path.push(next);
                current = next;
            }
            None => break,
        }
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use bingo_core::{BingoConfig, BingoEngine};
    use bingo_graph::dynamic_graph::running_example;
    use bingo_graph::{Bias, DynamicGraph};
    use bingo_sampling::rng::Pcg64;
    use rand::SeedableRng;

    fn engine() -> BingoEngine {
        BingoEngine::build(&running_example(), BingoConfig::default()).unwrap()
    }

    /// A small strongly-connected weighted graph (triangle plus chords) so
    /// fixed-length walks never hit a dead end.
    fn cyclic_engine() -> BingoEngine {
        let mut g = DynamicGraph::new(4);
        let edges = [
            (0, 1, 1),
            (0, 2, 3),
            (1, 2, 2),
            (1, 0, 1),
            (2, 3, 5),
            (2, 0, 1),
            (3, 0, 1),
            (3, 1, 4),
        ];
        for (s, d, w) in edges {
            g.insert_edge(s, d, Bias::from_int(w)).unwrap();
        }
        BingoEngine::build(&g, BingoConfig::default()).unwrap()
    }

    #[test]
    fn walk_spec_names_and_lengths() {
        assert_eq!(WalkSpec::DeepWalk(DeepWalkConfig::default()).name(), "DeepWalk");
        assert_eq!(WalkSpec::Node2Vec(Node2VecConfig::default()).name(), "node2vec");
        assert_eq!(WalkSpec::Ppr(PprConfig::default()).name(), "PPR");
        assert_eq!(
            WalkSpec::SimpleSampling(SimpleSamplingConfig::default()).name(),
            "SimpleSampling"
        );
        assert_eq!(
            WalkSpec::DeepWalk(DeepWalkConfig { walk_length: 80 }).expected_length(),
            80
        );
        assert_eq!(WalkSpec::Ppr(PprConfig::default()).expected_length(), 80);
    }

    #[test]
    fn fixed_length_walk_respects_length_and_edges() {
        let engine = cyclic_engine();
        let mut rng = Pcg64::seed_from_u64(1);
        let path = fixed_length_walk(&engine, 0, 40, &mut rng);
        assert_eq!(path.len(), 41);
        for pair in path.windows(2) {
            assert!(engine.has_edge(pair[0], pair[1]), "invalid step {pair:?}");
        }
    }

    #[test]
    fn walk_stops_at_dead_end() {
        let engine = engine();
        let mut rng = Pcg64::seed_from_u64(2);
        // Vertex 5 has no out-edges in the running example.
        let path = fixed_length_walk(&engine, 5, 10, &mut rng);
        assert_eq!(path, vec![5]);
    }

    #[test]
    fn node2vec_low_p_backtracks_more_than_high_p() {
        let engine = cyclic_engine();
        let count_backtracks = |p: f64, q: f64, seed: u64| {
            let config = Node2VecConfig {
                walk_length: 60,
                p,
                q,
            };
            let mut rng = Pcg64::seed_from_u64(seed);
            let mut backtracks = 0usize;
            for start in [0u32, 1, 2, 3] {
                for _ in 0..200 {
                    let path = node2vec_walk(&engine, start, config, &mut rng);
                    for w in path.windows(3) {
                        if w[0] == w[2] {
                            backtracks += 1;
                        }
                    }
                }
            }
            backtracks
        };
        let low_p = count_backtracks(0.1, 1.0, 7);
        let high_p = count_backtracks(10.0, 1.0, 7);
        assert!(
            low_p > high_p,
            "low p should backtrack more: {low_p} vs {high_p}"
        );
    }

    #[test]
    fn node2vec_walks_are_valid_paths() {
        let engine = cyclic_engine();
        let mut rng = Pcg64::seed_from_u64(9);
        let path = node2vec_walk(&engine, 0, Node2VecConfig::default(), &mut rng);
        assert!(path.len() > 2);
        for pair in path.windows(2) {
            assert!(engine.has_edge(pair[0], pair[1]));
        }
    }

    #[test]
    fn ppr_walk_length_matches_expectation() {
        let engine = cyclic_engine();
        let config = PprConfig {
            stop_probability: 0.1,
            max_length: 1000,
        };
        let mut rng = Pcg64::seed_from_u64(3);
        let mut total = 0usize;
        let n = 20_000;
        for _ in 0..n {
            total += ppr_walk(&engine, 0, config, &mut rng).len() - 1;
        }
        let mean = total as f64 / n as f64;
        // Expected number of steps before termination is (1 - s) / s = 9.
        assert!((mean - 9.0).abs() < 0.3, "mean walk length {mean}");
    }

    #[test]
    fn ppr_walk_respects_max_length() {
        let engine = cyclic_engine();
        let config = PprConfig {
            stop_probability: 0.0,
            max_length: 25,
        };
        let mut rng = Pcg64::seed_from_u64(4);
        let path = ppr_walk(&engine, 0, config, &mut rng);
        assert_eq!(path.len(), 26);
    }

    #[test]
    fn walk_spec_dispatches_to_the_right_application() {
        let engine = cyclic_engine();
        let mut rng = Pcg64::seed_from_u64(5);
        for spec in [
            WalkSpec::DeepWalk(DeepWalkConfig { walk_length: 10 }),
            WalkSpec::Node2Vec(Node2VecConfig {
                walk_length: 10,
                p: 0.5,
                q: 2.0,
            }),
            WalkSpec::Ppr(PprConfig::default()),
            WalkSpec::SimpleSampling(SimpleSamplingConfig { walk_length: 10 }),
        ] {
            let path = spec.walk(&engine, 1, &mut rng);
            assert!(!path.is_empty());
            assert_eq!(path[0], 1);
        }
    }
}

//! # bingo-walks
//!
//! Random-walk applications and the parallel walker engine.
//!
//! The paper evaluates three applications — biased DeepWalk, node2vec and
//! personalized PageRank — on top of Bingo's sampling engine. All of them
//! reduce to the same inner operation: *a walker at vertex `u` picks one of
//! `u`'s out-edges proportionally to the transition biases*. That operation
//! is abstracted by the [`TransitionSampler`] trait, which `BingoEngine` and
//! every baseline system implement, so the applications, the walker engine,
//! and the evaluation workflow are shared across all systems.
//!
//! * [`model`] — the pluggable [`WalkModel`] trait: a
//!   walk application as an object-safe state machine, plus the built-in
//!   implementations. Every execution layer drives models through this
//!   trait; custom applications plug into all of them.
//! * [`apps`] — the built-in application configurations, the thin
//!   [`WalkSpec`] constructor layer, and the resumable [`WalkCursor`].
//! * [`engine`] — the parallel walker engine: one RNG stream per walker,
//!   rayon-parallel execution, visit-count aggregation.
//! * [`workflow`] — the paper's evaluation loop (§6.1): rounds of update
//!   ingestion followed by a full walk pass, with per-phase timing.
//! * [`analytics`] — the downstream consumers the paper's introduction
//!   motivates: PPR scores, SimRank, random-walk domination, GNN mini-batch
//!   fan-out sampling.
//! * [`walk_store`] — Wharf/FIRM-style incremental maintenance of stored
//!   walks: when an edge changes, only the affected suffixes are re-sampled
//!   from the updated engine (§7.2).
//! * [`wire`] — versioned fixed-width little-endian codecs for everything
//!   that crosses a shard boundary: walker frames, carried contexts, and
//!   the negotiated 16-byte snapshot handles.
//! * [`tenancy`] — multi-tenant ticket metadata ([`TenantId`],
//!   [`TicketMeta`]): the shared vocabulary the serving layers
//!   (`bingo-service`, `bingo-gateway`) use to attribute and fairly
//!   schedule walk submissions.
//!
//! ## Parallel execution contract
//!
//! Walk generation ([`WalkEngine`], [`WalkStore`] generation/refresh) and
//! the analytics fan-outs run on the `rayon` shim's thread team, so the
//! closures handed to `par_iter` pipelines must be `Fn + Send + Sync`:
//! derive all per-walker state (RNGs, cursors, scratch) *inside* the
//! closure from the walker index — never mutate captured state. Seeds are
//! index-derived, and the shim's chunking is thread-count-independent, so
//! for a fixed seed every walk output is bit-identical whether
//! `BINGO_THREADS=1` or the machine is saturated (pinned down by the
//! tier-1 `tests/parallelism.rs` regression tests).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analytics;
pub mod apps;
pub mod engine;
pub mod model;
pub mod tenancy;
pub mod walk_store;
pub mod wire;
pub mod workflow;

pub use analytics::{personalized_pagerank, random_walk_domination, sample_mini_batch, MiniBatch};
pub use apps::{
    DeepWalkConfig, Node2VecConfig, PprConfig, SimpleSamplingConfig, WalkCursor, WalkSpec,
};
pub use engine::{WalkEngine, WalkResults};
pub use model::{
    BloomFingerprint, CarriedContext, ContextEncoding, ContextMembership, ContextRequirement,
    ContextSnapshot, DeltaFingerprint, SharedWalkModel, StepSampler, Transition, WalkModel,
    WalkState,
};
pub use tenancy::{TenantId, TicketMeta};
pub use walk_store::{RefreshStats, WalkStore};
pub use wire::{ContextHandle, FrameContext, WalkerFrame, WireError};
pub use workflow::{EvaluationWorkflow, IngestMode, IngestStats, RoundReport, WorkflowReport};

use bingo_core::BingoEngine;
use bingo_graph::{UpdateBatch, VertexId};
use rand::Rng;

/// Anything a walker can sample transitions from.
///
/// Implementations must return neighbors of `v` with probability
/// proportional to the edge biases (Equation 2 of the paper).
pub trait TransitionSampler: Sync {
    /// Number of vertices in the graph.
    fn num_vertices(&self) -> usize;

    /// Out-degree of `v`.
    fn degree(&self, v: VertexId) -> usize;

    /// Sample one neighbor of `v` proportionally to the edge biases.
    /// Returns `None` when `v` has no out-edges.
    fn sample_neighbor<R: Rng + ?Sized>(&self, v: VertexId, rng: &mut R) -> Option<VertexId>;

    /// Whether the edge `(src, dst)` exists (needed by second-order
    /// applications such as node2vec).
    fn has_edge(&self, src: VertexId, dst: VertexId) -> bool;

    /// Bias of the edge `(src, dst)`, if present.
    fn edge_bias(&self, src: VertexId, dst: VertexId) -> Option<f64>;

    /// Whether this sampler owns `v`'s out-edges — i.e. whether
    /// [`TransitionSampler::has_edge`] answers authoritatively for
    /// `src == v`. Defaults to `true` (whole-graph samplers); range-sharded
    /// engines override it so second-order membership fallbacks can detect
    /// a missing carried context instead of silently reading "no edge"
    /// (see `bingo_walks::model`'s missing-context-fault docs).
    fn owns_vertex(&self, _v: VertexId) -> bool {
        true
    }
}

/// A sampler that can also ingest graph updates — the interface the
/// evaluation workflow drives for Bingo and for every baseline system.
pub trait DynamicWalkSystem: TransitionSampler {
    /// Human-readable system name used in reports ("Bingo", "KnightKing", …).
    fn name(&self) -> &'static str;

    /// Ingest a batch of updates in the requested mode. Systems that do not
    /// support incremental updates (the static baselines) rebuild their
    /// sampling structures from the updated graph, exactly as the paper does
    /// when evaluating them on dynamic workloads.
    fn ingest(&mut self, batch: &UpdateBatch, mode: IngestMode) -> IngestStats;

    /// Bytes of memory used by the sampling structures (and graph storage).
    fn memory_bytes(&self) -> usize;
}

impl TransitionSampler for BingoEngine {
    fn num_vertices(&self) -> usize {
        BingoEngine::num_vertices(self)
    }

    fn degree(&self, v: VertexId) -> usize {
        BingoEngine::degree(self, v)
    }

    #[inline]
    fn sample_neighbor<R: Rng + ?Sized>(&self, v: VertexId, rng: &mut R) -> Option<VertexId> {
        BingoEngine::sample_neighbor(self, v, rng)
    }

    fn has_edge(&self, src: VertexId, dst: VertexId) -> bool {
        BingoEngine::has_edge(self, src, dst)
    }

    fn edge_bias(&self, src: VertexId, dst: VertexId) -> Option<f64> {
        BingoEngine::edge_bias(self, src, dst)
    }

    fn owns_vertex(&self, v: VertexId) -> bool {
        BingoEngine::owns(self, v)
    }
}

impl DynamicWalkSystem for BingoEngine {
    fn name(&self) -> &'static str {
        "Bingo"
    }

    fn ingest(&mut self, batch: &UpdateBatch, mode: IngestMode) -> IngestStats {
        // lint:allow(determinism): IngestStats latency measurement for
        // the bench comparison harness; walk output never observes it.
        let start = std::time::Instant::now();
        let (applied, skipped) = match mode {
            IngestMode::Streaming => {
                let applied = self.apply_streaming(batch);
                (applied, batch.len() - applied)
            }
            IngestMode::Batched => {
                let outcome = self.apply_batch(batch);
                (outcome.inserted + outcome.deleted, outcome.missing_deletes)
            }
        };
        IngestStats {
            applied,
            skipped,
            elapsed: start.elapsed(),
        }
    }

    fn memory_bytes(&self) -> usize {
        self.memory_report().total_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bingo_core::BingoConfig;
    use bingo_graph::dynamic_graph::running_example;
    use bingo_graph::{Bias, UpdateEvent};
    use bingo_sampling::rng::Pcg64;
    use rand::SeedableRng;

    #[test]
    fn bingo_engine_implements_transition_sampler() {
        let engine = BingoEngine::build(&running_example(), BingoConfig::default()).unwrap();
        assert_eq!(TransitionSampler::num_vertices(&engine), 6);
        assert_eq!(TransitionSampler::degree(&engine, 2), 3);
        assert!(TransitionSampler::has_edge(&engine, 2, 4));
        assert_eq!(TransitionSampler::edge_bias(&engine, 2, 4), Some(4.0));
        let mut rng = Pcg64::seed_from_u64(1);
        assert!(TransitionSampler::sample_neighbor(&engine, 2, &mut rng).is_some());
    }

    #[test]
    fn bingo_engine_ingests_in_both_modes() {
        let mut streaming = BingoEngine::build(&running_example(), BingoConfig::default()).unwrap();
        let mut batched = streaming.clone();
        let batch = UpdateBatch::new(vec![
            UpdateEvent::Insert {
                src: 2,
                dst: 3,
                bias: Bias::from_int(3),
            },
            UpdateEvent::Delete { src: 2, dst: 1 },
        ]);
        let s = streaming.ingest(&batch, IngestMode::Streaming);
        let b = batched.ingest(&batch, IngestMode::Batched);
        assert_eq!(s.applied, 2);
        assert_eq!(b.applied, 2);
        assert_eq!(streaming.num_edges(), batched.num_edges());
        assert!(streaming.memory_bytes() > 0);
        assert_eq!(DynamicWalkSystem::name(&streaming), "Bingo");
    }
}

//! Walk-based graph analytics.
//!
//! The paper's introduction (§1) motivates random walks with four downstream
//! consumers: mini-batch construction for graph neural network training,
//! node embeddings for recommendation, and the "visit frequency" family —
//! personalized PageRank, SimRank and Random Walk Domination — where many
//! walks are launched and per-vertex visit counts become the score. This
//! module implements those consumers on top of any [`TransitionSampler`], so
//! they run unchanged over Bingo and over every baseline engine.

use crate::apps::PprConfig;
use crate::engine::{WalkEngine, WalkResults};
use crate::TransitionSampler;
use bingo_graph::VertexId;
use bingo_sampling::rng::Pcg64;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// Monte-Carlo personalized PageRank scores from a single source.
///
/// Launches `num_walks` terminating walks from `source` and returns the
/// normalized visit frequencies — the estimator FORA/SpeedPPR-style systems
/// refine and the one the paper's PPR application uses.
pub fn personalized_pagerank<S>(
    sampler: &S,
    source: VertexId,
    num_walks: usize,
    config: PprConfig,
    seed: u64,
) -> Vec<f64>
where
    S: TransitionSampler + ?Sized,
{
    let starts = vec![source; num_walks];
    let engine = WalkEngine::new(seed);
    let results = engine.run(sampler, &crate::apps::WalkSpec::Ppr(config), &starts);
    results.visit_frequencies(sampler.num_vertices())
}

/// Estimate the SimRank similarity of two vertices by the meeting
/// probability of two backward-coupled random walks (Jeh & Widom's
/// random-surfer interpretation, estimated forward here because the
/// reproduction's graphs store out-edges).
///
/// Two walkers start at `a` and `b` and step simultaneously with decay
/// `c`; the estimate is the discounted probability that they first meet at
/// the same vertex at the same step.
pub fn simrank_estimate<S>(
    sampler: &S,
    a: VertexId,
    b: VertexId,
    num_pairs: usize,
    max_steps: usize,
    c: f64,
    seed: u64,
) -> f64
where
    S: TransitionSampler + ?Sized,
{
    if a == b {
        return 1.0;
    }
    // Each pair walks at most `max_steps` coupled steps — cheap enough
    // that unbounded splitting would be mostly dispatch overhead.
    let hits: f64 = (0..num_pairs)
        .into_par_iter()
        .with_min_len(32)
        .map(|i| {
            let mut rng = Pcg64::seed_from_u64(seed ^ (i as u64).wrapping_mul(0x9E37_79B9));
            let mut x = a;
            let mut y = b;
            let mut discount = 1.0;
            for _ in 0..max_steps {
                discount *= c;
                let nx = sampler.sample_neighbor(x, &mut rng);
                let ny = sampler.sample_neighbor(y, &mut rng);
                match (nx, ny) {
                    (Some(nx), Some(ny)) => {
                        if nx == ny {
                            return discount;
                        }
                        x = nx;
                        y = ny;
                    }
                    _ => return 0.0,
                }
            }
            0.0
        })
        .sum();
    hits / num_pairs as f64
}

/// Random Walk Domination (§1, [Li et al. 2014]): greedily select `k` seed
/// vertices whose fixed-length walks cover as many distinct vertices as
/// possible.
///
/// Returns the selected seeds and the total number of distinct vertices
/// covered by their walks.
pub fn random_walk_domination<S>(
    sampler: &S,
    k: usize,
    walks_per_vertex: usize,
    walk_length: usize,
    seed: u64,
) -> (Vec<VertexId>, usize)
where
    S: TransitionSampler + ?Sized,
{
    let n = sampler.num_vertices();
    if n == 0 || k == 0 {
        return (Vec::new(), 0);
    }
    // Precompute the coverage set of every candidate vertex in parallel.
    let coverage: Vec<std::collections::HashSet<VertexId>> = (0..n as VertexId)
        .into_par_iter()
        .map(|v| {
            let mut rng = Pcg64::seed_from_u64(seed ^ u64::from(v).wrapping_mul(0xA24B_AED4));
            let mut covered = std::collections::HashSet::new();
            covered.insert(v);
            for _ in 0..walks_per_vertex {
                let mut current = v;
                for _ in 0..walk_length {
                    match sampler.sample_neighbor(current, &mut rng) {
                        Some(next) => {
                            covered.insert(next);
                            current = next;
                        }
                        None => break,
                    }
                }
            }
            covered
        })
        .collect();
    // Greedy max-coverage selection.
    let mut selected = Vec::with_capacity(k);
    let mut covered: std::collections::HashSet<VertexId> = std::collections::HashSet::new();
    let mut available: Vec<bool> = vec![true; n];
    for _ in 0..k.min(n) {
        let best = (0..n)
            .filter(|&v| available[v])
            .max_by_key(|&v| coverage[v].iter().filter(|x| !covered.contains(x)).count());
        let Some(best) = best else { break };
        available[best] = false;
        covered.extend(coverage[best].iter().copied());
        selected.push(best as VertexId);
    }
    let total = covered.len();
    (selected, total)
}

/// A sampled k-hop neighborhood ("mini-batch") around a set of seed
/// vertices, in the style of GraphSAGE fan-out sampling used to train GNNs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MiniBatch {
    /// The seed vertices the batch was built around.
    pub seeds: Vec<VertexId>,
    /// All vertices included in the batch (seeds first, then sampled
    /// neighbors hop by hop, deduplicated).
    pub vertices: Vec<VertexId>,
    /// Sampled edges as `(src, dst)` pairs, oriented from the later hop
    /// toward the seeds.
    pub edges: Vec<(VertexId, VertexId)>,
}

impl MiniBatch {
    /// Number of distinct vertices in the batch.
    pub fn num_vertices(&self) -> usize {
        self.vertices.len()
    }

    /// Number of sampled edges in the batch.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }
}

/// Sample a GNN training mini-batch: for each seed, sample `fanouts[h]`
/// biased neighbors at hop `h`, recursively.
pub fn sample_mini_batch<S, R>(
    sampler: &S,
    seeds: &[VertexId],
    fanouts: &[usize],
    rng: &mut R,
) -> MiniBatch
where
    S: TransitionSampler + ?Sized,
    R: Rng + ?Sized,
{
    let mut vertices: Vec<VertexId> = Vec::new();
    let mut seen: std::collections::HashSet<VertexId> = std::collections::HashSet::new();
    let mut edges = Vec::new();
    let mut frontier: Vec<VertexId> = seeds.to_vec();
    for &s in seeds {
        if seen.insert(s) {
            vertices.push(s);
        }
    }
    for &fanout in fanouts {
        let mut next_frontier = Vec::new();
        for &v in &frontier {
            for _ in 0..fanout {
                if let Some(neighbor) = sampler.sample_neighbor(v, rng) {
                    edges.push((v, neighbor));
                    if seen.insert(neighbor) {
                        vertices.push(neighbor);
                        next_frontier.push(neighbor);
                    }
                }
            }
        }
        frontier = next_frontier;
        if frontier.is_empty() {
            break;
        }
    }
    MiniBatch {
        seeds: seeds.to_vec(),
        vertices,
        edges,
    }
}

/// Convenience: run a full DeepWalk corpus and return the vertices ranked by
/// visit count (the "influence ranking" downstream consumers read off the
/// corpus).
pub fn visit_ranking(results: &WalkResults, num_vertices: usize) -> Vec<(VertexId, u64)> {
    let counts = results.visit_counts(num_vertices);
    let mut ranked: Vec<(VertexId, u64)> = counts
        .into_iter()
        .enumerate()
        .map(|(v, c)| (v as VertexId, c))
        .collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::{DeepWalkConfig, WalkSpec};
    use bingo_core::{BingoConfig, BingoEngine};
    use bingo_graph::{Bias, DynamicGraph};

    /// A two-community graph: vertices 0..5 densely connected, 5..10 densely
    /// connected, one bridge edge between the communities.
    fn community_engine() -> BingoEngine {
        let mut g = DynamicGraph::new(10);
        for a in 0..5u32 {
            for b in 0..5u32 {
                if a != b {
                    g.insert_edge(a, b, Bias::from_int(4)).unwrap();
                }
            }
        }
        for a in 5..10u32 {
            for b in 5..10u32 {
                if a != b {
                    g.insert_edge(a, b, Bias::from_int(4)).unwrap();
                }
            }
        }
        g.insert_undirected_edge(4, 5, Bias::from_int(1)).unwrap();
        BingoEngine::build(&g, BingoConfig::default()).unwrap()
    }

    #[test]
    fn ppr_concentrates_mass_near_the_source() {
        let engine = community_engine();
        let scores = personalized_pagerank(
            &engine,
            0,
            4000,
            PprConfig {
                stop_probability: 0.2,
                max_length: 100,
            },
            7,
        );
        assert_eq!(scores.len(), 10);
        assert!((scores.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // Mass inside the source's community must dominate the other one.
        let near: f64 = scores[0..5].iter().sum();
        let far: f64 = scores[5..10].iter().sum();
        assert!(near > far * 2.0, "near {near} vs far {far}");
    }

    #[test]
    fn simrank_is_higher_within_a_community() {
        let engine = community_engine();
        let same = simrank_estimate(&engine, 1, 2, 4000, 10, 0.8, 11);
        let cross = simrank_estimate(&engine, 1, 7, 4000, 10, 0.8, 11);
        assert!(same > cross, "same-community {same} vs cross {cross}");
        assert_eq!(simrank_estimate(&engine, 3, 3, 10, 5, 0.8, 1), 1.0);
    }

    #[test]
    fn domination_selects_seeds_from_both_communities() {
        let engine = community_engine();
        let (seeds, covered) = random_walk_domination(&engine, 2, 4, 6, 3);
        assert_eq!(seeds.len(), 2);
        assert!(
            covered >= 8,
            "2 seeds should cover most of the graph: {covered}"
        );
        let first_community = seeds.iter().filter(|&&s| s < 5).count();
        assert_eq!(
            first_community, 1,
            "one seed per community expected: {seeds:?}"
        );
    }

    #[test]
    fn domination_handles_degenerate_inputs() {
        let engine = community_engine();
        assert_eq!(random_walk_domination(&engine, 0, 2, 4, 1).0.len(), 0);
        let (seeds, _) = random_walk_domination(&engine, 50, 1, 2, 1);
        assert_eq!(seeds.len(), 10);
    }

    #[test]
    fn mini_batch_respects_fanouts_and_edges_exist() {
        let engine = community_engine();
        let mut rng = Pcg64::seed_from_u64(5);
        let batch = sample_mini_batch(&engine, &[0, 7], &[3, 2], &mut rng);
        assert_eq!(batch.seeds, vec![0, 7]);
        assert!(batch.num_vertices() >= 2);
        // Hop-0 sampling: at most 2 seeds × 3 samples, plus hop-1 ≤ 6 × 2.
        assert!(batch.num_edges() <= 2 * 3 + 6 * 2);
        for &(src, dst) in &batch.edges {
            assert!(
                engine.has_edge(src, dst),
                "sampled edge ({src},{dst}) missing"
            );
        }
        // Empty fanouts produce only the seeds.
        let empty = sample_mini_batch(&engine, &[3], &[], &mut rng);
        assert_eq!(empty.num_vertices(), 1);
        assert_eq!(empty.num_edges(), 0);
    }

    #[test]
    fn visit_ranking_is_sorted_and_complete() {
        let engine = community_engine();
        let results = WalkEngine::new(3).run_all_vertices(
            &engine,
            &WalkSpec::DeepWalk(DeepWalkConfig { walk_length: 10 }),
        );
        let ranking = visit_ranking(&results, engine.num_vertices());
        assert_eq!(ranking.len(), 10);
        for pair in ranking.windows(2) {
            assert!(pair[0].1 >= pair[1].1);
        }
    }
}

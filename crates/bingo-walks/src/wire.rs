//! Versioned wire codecs for the shard distribution boundary.
//!
//! Everything that crosses a shard boundary in the sharded walk service —
//! a forwarded walker, its carried membership snapshot, or the 16-byte
//! *handle* that stands in for a snapshot the receiver already caches —
//! has a fixed-width **little-endian** encoding defined here. The
//! in-process transport never materialises these bytes (it moves the
//! boxed walker), but its byte accounting is defined as "what this module
//! would emit", and the serialized transport round-trips every message
//! through [`encode_walker`]/[`decode_walker`] so accounted bytes are
//! measured bytes.
//!
//! Format rules (enforced by the `wire-format` lint rule):
//!
//! * every integer is fixed-width little-endian — never `usize` or any
//!   other platform-dependent width;
//! * every variable-length section carries an explicit count — a decoder
//!   never infers structure from container iteration order;
//! * decoding is total: truncated or corrupted input returns
//!   [`WireError`], never panics, and never allocates proportionally to a
//!   length field that the remaining buffer cannot back.
//!
//! The carried-context envelope and payloads are specified in the
//! [`crate::model`] module docs. The walker frame (version 1):
//!
//! | offset | size | field |
//! |-------:|-----:|-------|
//! | 0 | 1 | frame version ([`WALKER_WIRE_VERSION`]) |
//! | 1 | 8 | submission ticket (`u64`) |
//! | 9 | 4 | walker index within the ticket (`u32`) |
//! | 13 | 4 | cross-shard hops so far (`u32`) |
//! | 17 | 8 | missing-context faults so far (`u64`) |
//! | 25 | 1 | flags: bit 0 = trace-sampled, bit 1 = inline context follows, bit 2 = context handle follows |
//! | 26 | 16 | walker RNG raw state (`u128`) |
//! | 42 | 16 | walker RNG raw increment (`u128`) |
//! | 58 | 4 | path length (`u32`, ≥ 1) |
//! | 62 | 4·n | the visited path, one `u32` per vertex |
//! | — | var | carried context ([`encode_context`]) or handle ([`ContextHandle`]), per flags |
//!
//! The RNG state travels raw (`Pcg64::to_raw_parts`) so a decoded walker
//! resumes the *exact* random stream: a serialized hop is bit-identical
//! to an in-process hop.

use crate::model::{
    BloomFingerprint, CarriedContext, ContextMembership, ContextSnapshot, DeltaFingerprint,
};
use bingo_graph::VertexId;
use std::fmt;
use std::sync::Arc;

/// Why a wire buffer failed to decode. Decoders return this for every
/// malformed input — truncation and corruption are recoverable protocol
/// errors, never panics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the structure did.
    Truncated,
    /// The leading version byte is not a known format version.
    BadVersion(u8),
    /// A structural invariant failed (explained by the message).
    Corrupt(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "wire buffer truncated"),
            WireError::BadVersion(v) => write!(f, "unknown wire version {v}"),
            WireError::Corrupt(why) => write!(f, "corrupt wire buffer: {why}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Current walker frame version.
pub const WALKER_WIRE_VERSION: u8 = 1;

/// Wire size of a [`ContextHandle`]: vertex + owner shard + epoch.
pub const CONTEXT_HANDLE_BYTES: usize = 16;

const FLAG_SAMPLED: u8 = 1;
const FLAG_INLINE_CONTEXT: u8 = 1 << 1;
const FLAG_HANDLE_CONTEXT: u8 = 1 << 2;

// ---------------------------------------------------------------------------
// Primitive readers/writers
// ---------------------------------------------------------------------------

/// Bounds-checked little-endian reader over a byte slice.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        if end > self.buf.len() {
            return Err(WireError::Truncated);
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(self.take(4)?);
        Ok(u32::from_le_bytes(raw))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(self.take(8)?);
        Ok(u64::from_le_bytes(raw))
    }

    fn u128(&mut self) -> Result<u128, WireError> {
        let mut raw = [0u8; 16];
        raw.copy_from_slice(self.take(16)?);
        Ok(u128::from_le_bytes(raw))
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

/// Narrow an in-memory length to its `u32` wire representation. Lengths
/// here are bounded far below `u32::MAX` (vertex ids are `u32`; paths and
/// adjacency lists cannot exceed the id space), so overflow is an
/// encoder-side invariant violation, not a runtime condition.
fn len_u32(len: usize) -> u32 {
    u32::try_from(len).expect("wire length exceeds u32 range")
}

// ---------------------------------------------------------------------------
// Carried-context codec
// ---------------------------------------------------------------------------

/// Append the wire encoding of `ctx` to `buf`, returning the number of
/// bytes written — always exactly [`CarriedContext::byte_len`], which is
/// what makes the service's byte accounting honest.
pub fn encode_context(ctx: &CarriedContext, buf: &mut Vec<u8>) -> usize {
    let start = buf.len();
    buf.push(ctx.membership.wire_version());
    buf.extend_from_slice(&ctx.vertex.to_le_bytes());
    let len_at = buf.len();
    buf.extend_from_slice(&[0u8; 4]); // payload length, patched below
    match &ctx.membership {
        ContextSnapshot::Exact(adj) => {
            for &v in adj.iter() {
                buf.extend_from_slice(&v.to_le_bytes());
            }
        }
        ContextSnapshot::Delta(delta) => {
            let (stream, entries) = delta.wire_parts();
            buf.extend_from_slice(&len_u32(entries).to_le_bytes());
            buf.extend_from_slice(stream);
        }
        ContextSnapshot::Bloom(bloom) => {
            let (words, hashes, entries) = bloom.wire_parts();
            buf.extend_from_slice(&len_u32(entries).to_le_bytes());
            buf.push(hashes as u8);
            buf.extend_from_slice(&len_u32(words.len()).to_le_bytes());
            for &w in words {
                buf.extend_from_slice(&w.to_le_bytes());
            }
        }
    }
    let payload_len = len_u32(buf.len() - len_at - 4);
    buf[len_at..len_at + 4].copy_from_slice(&payload_len.to_le_bytes());
    debug_assert_eq!(
        buf.len() - start,
        ctx.byte_len(),
        "byte_len is the wire size"
    );
    buf.len() - start
}

/// Decode one carried context from the front of `bytes`, returning it
/// and the number of bytes consumed.
pub fn decode_context(bytes: &[u8]) -> Result<(CarriedContext, usize), WireError> {
    let mut r = Reader::new(bytes);
    let version = r.u8()?;
    let vertex: VertexId = r.u32()?;
    let payload_len = r.u32()? as usize;
    let payload = r.take(payload_len)?;
    let membership = match version {
        1 => {
            if !payload_len.is_multiple_of(4) {
                return Err(WireError::Corrupt("v1 payload not a whole number of ids"));
            }
            let mut ids: Vec<VertexId> = Vec::with_capacity(payload_len / 4);
            for chunk in payload.chunks_exact(4) {
                let mut raw = [0u8; 4];
                raw.copy_from_slice(chunk);
                ids.push(u32::from_le_bytes(raw));
            }
            if !ids.windows(2).all(|w| w[0] < w[1]) {
                return Err(WireError::Corrupt("v1 ids not strictly increasing"));
            }
            ContextSnapshot::Exact(Arc::new(ids))
        }
        2 => {
            let mut pr = Reader::new(payload);
            let entries = pr.u32()? as usize;
            let stream = pr.take(pr.remaining())?;
            let delta = DeltaFingerprint::from_wire_parts(stream.to_vec(), entries)
                .ok_or(WireError::Corrupt("v2 varint stream invalid"))?;
            ContextSnapshot::Delta(Arc::new(delta))
        }
        3 => {
            let mut pr = Reader::new(payload);
            let entries = pr.u32()? as usize;
            let hashes = u32::from(pr.u8()?);
            let num_words = pr.u32()? as usize;
            let want = num_words
                .checked_mul(8)
                .ok_or(WireError::Corrupt("v3 word count overflows"))?;
            let raw = pr.take(want)?;
            if pr.remaining() != 0 {
                return Err(WireError::Corrupt("v3 trailing payload bytes"));
            }
            let mut words: Vec<u64> = Vec::with_capacity(num_words);
            for chunk in raw.chunks_exact(8) {
                let mut w = [0u8; 8];
                w.copy_from_slice(chunk);
                words.push(u64::from_le_bytes(w));
            }
            let bloom = BloomFingerprint::from_wire_parts(words, hashes, entries)
                .ok_or(WireError::Corrupt("v3 filter invariants violated"))?;
            ContextSnapshot::Bloom(Arc::new(bloom))
        }
        v => return Err(WireError::BadVersion(v)),
    };
    Ok((CarriedContext { vertex, membership }, r.pos))
}

// ---------------------------------------------------------------------------
// Snapshot handles
// ---------------------------------------------------------------------------

/// The 16-byte stand-in for a snapshot body the receiver already caches:
/// the negotiated *handle*. Identity is `(vertex, epoch)` — a snapshot of
/// a vertex stays valid for as long as no structural update touches that
/// vertex, so the capture epoch names it unambiguously; the owner shard
/// routes a body re-request on a cache miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ContextHandle {
    /// The vertex whose adjacency the referenced snapshot describes.
    pub vertex: VertexId,
    /// The shard that owns the vertex (and can serve the body on a miss).
    pub owner_shard: u32,
    /// The epoch the snapshot was captured in.
    pub epoch: u64,
}

impl ContextHandle {
    /// Append the 16-byte wire encoding to `buf`.
    pub fn encode(&self, buf: &mut Vec<u8>) -> usize {
        buf.extend_from_slice(&self.vertex.to_le_bytes());
        buf.extend_from_slice(&self.owner_shard.to_le_bytes());
        buf.extend_from_slice(&self.epoch.to_le_bytes());
        CONTEXT_HANDLE_BYTES
    }

    /// Decode a handle from the front of `bytes`, returning it and the
    /// number of bytes consumed.
    pub fn decode(bytes: &[u8]) -> Result<(Self, usize), WireError> {
        let mut r = Reader::new(bytes);
        let handle = ContextHandle {
            vertex: r.u32()?,
            owner_shard: r.u32()?,
            epoch: r.u64()?,
        };
        Ok((handle, r.pos))
    }
}

// ---------------------------------------------------------------------------
// Walker frames
// ---------------------------------------------------------------------------

/// The context section of a walker frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameContext {
    /// No carried context (first-order models, or pre-first-hop walkers).
    None,
    /// The full snapshot body travels inline (receiver-cache miss, or
    /// negotiation disabled).
    Inline(CarriedContext),
    /// Only the negotiated handle travels; the receiver resolves the body
    /// from its snapshot cache.
    Handle(ContextHandle),
}

/// Everything a forwarded walker is on the wire: the fields the receiving
/// shard needs to resume the walk bit-identically. Debug-only instrumentation
/// (trace spans, per-hop context records, in-flight timestamps) is
/// deliberately *not* frame data — it stays on the sending process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalkerFrame {
    /// The submission ticket the walker belongs to.
    pub ticket: u64,
    /// The walker's index within its ticket.
    pub index: u32,
    /// Cross-shard hops taken so far.
    pub hops: u32,
    /// Missing-context faults accumulated so far.
    pub context_misses: u64,
    /// Whether this walker's lifecycle is trace-sampled.
    pub sampled: bool,
    /// Raw PCG state (`Pcg64::to_raw_parts().0`).
    pub rng_state: u128,
    /// Raw PCG increment (`Pcg64::to_raw_parts().1`).
    pub rng_inc: u128,
    /// The visited path including the start vertex (never empty; the
    /// receiver rebuilds the cursor from it).
    pub path: Vec<VertexId>,
    /// The carried-context section.
    pub context: FrameContext,
}

impl WalkerFrame {
    /// Exact number of bytes [`encode_walker`] emits for this frame.
    pub fn encoded_len(&self) -> usize {
        let fixed = 1 + 8 + 4 + 4 + 8 + 1 + 16 + 16 + 4;
        let context = match &self.context {
            FrameContext::None => 0,
            FrameContext::Inline(ctx) => ctx.byte_len(),
            FrameContext::Handle(_) => CONTEXT_HANDLE_BYTES,
        };
        fixed + 4 * self.path.len() + context
    }
}

/// Append the wire encoding of `frame` to `buf`, returning the number of
/// bytes written (always [`WalkerFrame::encoded_len`]).
pub fn encode_walker(frame: &WalkerFrame, buf: &mut Vec<u8>) -> usize {
    let start = buf.len();
    buf.push(WALKER_WIRE_VERSION);
    buf.extend_from_slice(&frame.ticket.to_le_bytes());
    buf.extend_from_slice(&frame.index.to_le_bytes());
    buf.extend_from_slice(&frame.hops.to_le_bytes());
    buf.extend_from_slice(&frame.context_misses.to_le_bytes());
    let mut flags = 0u8;
    if frame.sampled {
        flags |= FLAG_SAMPLED;
    }
    match &frame.context {
        FrameContext::None => {}
        FrameContext::Inline(_) => flags |= FLAG_INLINE_CONTEXT,
        FrameContext::Handle(_) => flags |= FLAG_HANDLE_CONTEXT,
    }
    buf.push(flags);
    buf.extend_from_slice(&frame.rng_state.to_le_bytes());
    buf.extend_from_slice(&frame.rng_inc.to_le_bytes());
    buf.extend_from_slice(&len_u32(frame.path.len()).to_le_bytes());
    for &v in &frame.path {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    match &frame.context {
        FrameContext::None => {}
        FrameContext::Inline(ctx) => {
            encode_context(ctx, buf);
        }
        FrameContext::Handle(handle) => {
            handle.encode(buf);
        }
    }
    debug_assert_eq!(buf.len() - start, frame.encoded_len());
    buf.len() - start
}

/// Decode one walker frame from the front of `bytes`, returning it and
/// the number of bytes consumed.
pub fn decode_walker(bytes: &[u8]) -> Result<(WalkerFrame, usize), WireError> {
    let mut r = Reader::new(bytes);
    let version = r.u8()?;
    if version != WALKER_WIRE_VERSION {
        return Err(WireError::BadVersion(version));
    }
    let ticket = r.u64()?;
    let index = r.u32()?;
    let hops = r.u32()?;
    let context_misses = r.u64()?;
    let flags = r.u8()?;
    if flags & !(FLAG_SAMPLED | FLAG_INLINE_CONTEXT | FLAG_HANDLE_CONTEXT) != 0 {
        return Err(WireError::Corrupt("unknown walker flag bits"));
    }
    if flags & FLAG_INLINE_CONTEXT != 0 && flags & FLAG_HANDLE_CONTEXT != 0 {
        return Err(WireError::Corrupt("both inline and handle context flagged"));
    }
    let rng_state = r.u128()?;
    let rng_inc = r.u128()?;
    let path_len = r.u32()? as usize;
    if path_len == 0 {
        return Err(WireError::Corrupt("walker path is empty"));
    }
    let raw_path = r.take(path_len.checked_mul(4).ok_or(WireError::Truncated)?)?;
    let mut path: Vec<VertexId> = Vec::with_capacity(path_len);
    for chunk in raw_path.chunks_exact(4) {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(chunk);
        path.push(u32::from_le_bytes(raw));
    }
    let context = if flags & FLAG_INLINE_CONTEXT != 0 {
        let (ctx, used) = decode_context(&bytes[r.pos..])?;
        r.take(used)?;
        FrameContext::Inline(ctx)
    } else if flags & FLAG_HANDLE_CONTEXT != 0 {
        let (handle, used) = ContextHandle::decode(&bytes[r.pos..])?;
        r.take(used)?;
        FrameContext::Handle(handle)
    } else {
        FrameContext::None
    };
    let frame = WalkerFrame {
        ticket,
        index,
        hops,
        context_misses,
        sampled: flags & FLAG_SAMPLED != 0,
        rng_state,
        rng_inc,
        path,
        context,
    };
    Ok((frame, r.pos))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ContextEncoding, CONTEXT_ENVELOPE_BYTES};
    use bingo_sampling::rng::Pcg64;
    use rand::{Rng, SeedableRng};

    fn random_sorted_ids(rng: &mut Pcg64, max_len: usize) -> Vec<VertexId> {
        let len = rng.gen_range(0..=max_len);
        let mut ids: Vec<VertexId> = (0..len).map(|_| rng.gen_range(0..2_000_000u32)).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    fn random_context(rng: &mut Pcg64) -> CarriedContext {
        let ids = random_sorted_ids(rng, 200);
        let vertex = rng.gen_range(0..1_000_000u32);
        let encoding = match rng.gen_range(0..3u8) {
            0 => ContextEncoding::Exact,
            1 => ContextEncoding::Delta,
            _ => ContextEncoding::Bloom {
                bits_per_key: rng.gen_range(1..=16u8),
            },
        };
        encoding.encode(vertex, Arc::new(ids))
    }

    fn random_frame(rng: &mut Pcg64) -> WalkerFrame {
        let path_len = rng.gen_range(1..=64usize);
        let context = match rng.gen_range(0..3u8) {
            0 => FrameContext::None,
            1 => FrameContext::Inline(random_context(rng)),
            _ => FrameContext::Handle(ContextHandle {
                vertex: rng.gen(),
                owner_shard: rng.gen_range(0..64u32),
                epoch: rng.gen(),
            }),
        };
        WalkerFrame {
            ticket: rng.gen(),
            index: rng.gen(),
            hops: rng.gen_range(0..1000u32),
            context_misses: rng.gen_range(0..10u64),
            sampled: rng.gen_bool(0.3),
            rng_state: ((rng.gen::<u64>() as u128) << 64) | rng.gen::<u64>() as u128,
            rng_inc: ((rng.gen::<u64>() as u128) << 64) | rng.gen::<u64>() as u128,
            path: (0..path_len).map(|_| rng.gen()).collect(),
            context,
        }
    }

    #[test]
    fn context_round_trips_for_all_versions_on_random_inputs() {
        let mut rng = Pcg64::seed_from_u64(0xC0DEC);
        for _ in 0..200 {
            let ctx = random_context(&mut rng);
            let mut buf = Vec::new();
            let written = encode_context(&ctx, &mut buf);
            assert_eq!(written, buf.len());
            assert_eq!(
                written,
                ctx.byte_len(),
                "byte_len must be the exact wire size (v{})",
                ctx.membership.wire_version()
            );
            let (decoded, consumed) = decode_context(&buf).expect("round trip");
            assert_eq!(consumed, buf.len());
            assert_eq!(decoded, ctx);
        }
    }

    #[test]
    fn context_decode_errs_on_every_truncation() {
        let mut rng = Pcg64::seed_from_u64(0x7A17);
        for _ in 0..40 {
            let ctx = random_context(&mut rng);
            let mut buf = Vec::new();
            encode_context(&ctx, &mut buf);
            for cut in 0..buf.len() {
                assert!(
                    decode_context(&buf[..cut]).is_err(),
                    "prefix of {cut}/{} bytes must not decode",
                    buf.len()
                );
            }
        }
    }

    #[test]
    fn context_decode_never_panics_on_corruption() {
        let mut rng = Pcg64::seed_from_u64(0xBADBEEF);
        for _ in 0..60 {
            let ctx = random_context(&mut rng);
            let mut buf = Vec::new();
            encode_context(&ctx, &mut buf);
            for _ in 0..32 {
                let mut bad = buf.clone();
                let at = rng.gen_range(0..bad.len());
                bad[at] ^= 1 << rng.gen_range(0..8u8);
                // Must return (Ok or Err), never panic or over-allocate.
                let _ = decode_context(&bad);
            }
        }
    }

    #[test]
    fn context_decode_rejects_structural_corruption() {
        let ctx = CarriedContext::exact(9, vec![3, 5, 8]);
        let mut buf = Vec::new();
        encode_context(&ctx, &mut buf);
        // Unknown version byte.
        let mut bad = buf.clone();
        bad[0] = 9;
        assert_eq!(decode_context(&bad), Err(WireError::BadVersion(9)));
        // Out-of-order ids.
        let mut bad = buf.clone();
        bad[CONTEXT_ENVELOPE_BYTES..CONTEXT_ENVELOPE_BYTES + 4]
            .copy_from_slice(&100u32.to_le_bytes());
        assert!(matches!(decode_context(&bad), Err(WireError::Corrupt(_))));
        // Payload length not a multiple of the id width.
        let mut bad = buf.clone();
        bad[5..9].copy_from_slice(&11u32.to_le_bytes());
        assert!(decode_context(&bad).is_err());
        // A delta whose entry count disagrees with its varint stream.
        let delta = ContextEncoding::Delta.encode(1, Arc::new(vec![10, 20, 30]));
        let mut buf = Vec::new();
        encode_context(&delta, &mut buf);
        buf[CONTEXT_ENVELOPE_BYTES..CONTEXT_ENVELOPE_BYTES + 4]
            .copy_from_slice(&7u32.to_le_bytes());
        assert!(matches!(decode_context(&buf), Err(WireError::Corrupt(_))));
    }

    #[test]
    fn handle_round_trips_in_exactly_sixteen_bytes() {
        let handle = ContextHandle {
            vertex: 0xDEAD_BEEF,
            owner_shard: 7,
            epoch: 0x0123_4567_89AB_CDEF,
        };
        let mut buf = Vec::new();
        assert_eq!(handle.encode(&mut buf), CONTEXT_HANDLE_BYTES);
        assert_eq!(buf.len(), CONTEXT_HANDLE_BYTES);
        let (decoded, consumed) = ContextHandle::decode(&buf).expect("round trip");
        assert_eq!(consumed, CONTEXT_HANDLE_BYTES);
        assert_eq!(decoded, handle);
        for cut in 0..buf.len() {
            assert_eq!(
                ContextHandle::decode(&buf[..cut]),
                Err(WireError::Truncated)
            );
        }
    }

    #[test]
    fn walker_frame_round_trips_on_random_inputs() {
        let mut rng = Pcg64::seed_from_u64(0xF4A3E);
        for _ in 0..200 {
            let frame = random_frame(&mut rng);
            let mut buf = Vec::new();
            let written = encode_walker(&frame, &mut buf);
            assert_eq!(written, buf.len());
            assert_eq!(written, frame.encoded_len(), "encoded_len is exact");
            let (decoded, consumed) = decode_walker(&buf).expect("round trip");
            assert_eq!(consumed, buf.len());
            assert_eq!(decoded, frame);
        }
    }

    #[test]
    fn walker_decode_errs_on_truncation_and_survives_corruption() {
        let mut rng = Pcg64::seed_from_u64(0x5EED);
        for _ in 0..30 {
            let frame = random_frame(&mut rng);
            let mut buf = Vec::new();
            encode_walker(&frame, &mut buf);
            for cut in 0..buf.len() {
                assert!(
                    decode_walker(&buf[..cut]).is_err(),
                    "prefix of {cut}/{} bytes must not decode",
                    buf.len()
                );
            }
            for _ in 0..32 {
                let mut bad = buf.clone();
                let at = rng.gen_range(0..bad.len());
                bad[at] ^= 1 << rng.gen_range(0..8u8);
                let _ = decode_walker(&bad);
            }
        }
    }

    #[test]
    fn walker_decode_rejects_bad_structure() {
        let frame = WalkerFrame {
            ticket: 1,
            index: 0,
            hops: 2,
            context_misses: 0,
            sampled: false,
            rng_state: 42,
            rng_inc: 43,
            path: vec![1, 2, 3],
            context: FrameContext::None,
        };
        let mut buf = Vec::new();
        encode_walker(&frame, &mut buf);
        // Unknown frame version.
        let mut bad = buf.clone();
        bad[0] = 200;
        assert_eq!(decode_walker(&bad), Err(WireError::BadVersion(200)));
        // Unknown flag bits.
        let mut bad = buf.clone();
        bad[25] = 0xF0;
        assert!(matches!(decode_walker(&bad), Err(WireError::Corrupt(_))));
        // Contradictory context flags.
        let mut bad = buf.clone();
        bad[25] = FLAG_INLINE_CONTEXT | FLAG_HANDLE_CONTEXT;
        assert!(matches!(decode_walker(&bad), Err(WireError::Corrupt(_))));
        // Empty path.
        let mut bad = buf.clone();
        bad[58..62].copy_from_slice(&0u32.to_le_bytes());
        assert!(matches!(decode_walker(&bad), Err(WireError::Corrupt(_))));
        // A path length the buffer cannot back must fail fast without a
        // proportional allocation.
        let mut bad = buf;
        bad[58..62].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode_walker(&bad), Err(WireError::Truncated));
    }

    #[test]
    fn decoded_walker_resumes_the_exact_rng_stream() {
        let mut walker_rng = Pcg64::seed_from_u64(77);
        for _ in 0..13 {
            walker_rng.next();
        }
        let (state, inc) = walker_rng.to_raw_parts();
        let frame = WalkerFrame {
            ticket: 5,
            index: 1,
            hops: 1,
            context_misses: 0,
            sampled: true,
            rng_state: state,
            rng_inc: inc,
            path: vec![4, 9],
            context: FrameContext::None,
        };
        let mut buf = Vec::new();
        encode_walker(&frame, &mut buf);
        let (decoded, _) = decode_walker(&buf).expect("round trip");
        let mut resumed = Pcg64::from_raw_parts(decoded.rng_state, decoded.rng_inc);
        for _ in 0..16 {
            assert_eq!(walker_rng.next(), resumed.next());
        }
    }
}

//! Multi-tenant ticket metadata: who submitted a batch of walks and with
//! what scheduling weight.
//!
//! The serving layers above the walk engine — `bingo-service`'s
//! `WalkRequest` builder and `bingo-gateway`'s fair scheduler — need a
//! shared vocabulary for attributing walk submissions to tenants without
//! depending on each other. That vocabulary lives here, at the walk-model
//! layer, next to the other request-describing types ([`crate::WalkSpec`],
//! [`crate::model::ContextRequirement`]).
//!
//! A [`TenantId`] is a cheap-to-clone interned name; [`TicketMeta`] pairs
//! it with the tenant's scheduling weight. Weights are *relative*: a
//! gateway running deficit-round-robin gives each backlogged tenant a
//! per-round quantum proportional to its weight, so a weight-3 tenant
//! drains three walkers for every one of a weight-1 tenant under
//! saturation.

use std::fmt;
use std::sync::Arc;

/// The tenant every submission belongs to when none is named.
pub const DEFAULT_TENANT: &str = "default";

/// The scheduling weight assigned when none is configured.
pub const DEFAULT_WEIGHT: u32 = 1;

/// An interned tenant name: cheap to clone, hash and compare, so it can
/// ride on every queued chunk without re-allocating the string.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(Arc<str>);

impl TenantId {
    /// Intern a tenant name.
    pub fn new(name: impl AsRef<str>) -> Self {
        TenantId(Arc::from(name.as_ref()))
    }

    /// The tenant's name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl Default for TenantId {
    fn default() -> Self {
        TenantId::new(DEFAULT_TENANT)
    }
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for TenantId {
    fn from(name: &str) -> Self {
        TenantId::new(name)
    }
}

impl From<String> for TenantId {
    fn from(name: String) -> Self {
        TenantId::new(name)
    }
}

/// Scheduling metadata attached to one walk submission (ticket): the
/// tenant it is billed to and, optionally, an explicit relative weight.
///
/// `weight` is `None` unless the submitter set one — an unset weight
/// means *inherit*: schedulers keep whatever weight the tenant already
/// has configured (falling back to [`DEFAULT_WEIGHT`] for unknown
/// tenants) instead of resetting it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TicketMeta {
    /// Tenant the submission belongs to.
    pub tenant: TenantId,
    /// Explicit deficit-round-robin weight, if the submission carries one
    /// (clamped to at least 1 by consumers; see
    /// [`TicketMeta::effective_weight`]).
    pub weight: Option<u32>,
}

impl TicketMeta {
    /// Metadata for `tenant` at an explicit `weight`.
    pub fn new(tenant: impl Into<TenantId>, weight: u32) -> Self {
        TicketMeta {
            tenant: tenant.into(),
            weight: Some(weight),
        }
    }

    /// The weight schedulers must use when this submission carries one: a
    /// configured weight of 0 would starve the tenant forever, so it is
    /// read as the minimum share of 1. Falls back to [`DEFAULT_WEIGHT`]
    /// when no explicit weight was set.
    pub fn effective_weight(&self) -> u32 {
        self.weight.unwrap_or(DEFAULT_WEIGHT).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn tenant_ids_intern_and_compare_by_name() {
        let a = TenantId::new("acme");
        let b: TenantId = "acme".into();
        let c: TenantId = String::from("other").into();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.to_string(), "acme");
        let set: HashSet<TenantId> = [a, b, c].into_iter().collect();
        assert_eq!(set.len(), 2, "equal names hash identically");
    }

    #[test]
    fn default_meta_names_the_default_tenant_with_no_explicit_weight() {
        let meta = TicketMeta::default();
        assert_eq!(meta.tenant.as_str(), DEFAULT_TENANT);
        assert_eq!(
            meta.weight, None,
            "unset weight means inherit, not overwrite"
        );
        assert_eq!(meta.effective_weight(), DEFAULT_WEIGHT);
    }

    #[test]
    fn zero_weight_is_read_as_one() {
        let meta = TicketMeta::new("starved", 0);
        assert_eq!(meta.weight, Some(0), "the configured value is preserved");
        assert_eq!(meta.effective_weight(), 1, "but schedulers see >= 1");
        assert_eq!(TicketMeta::new("heavy", 5).effective_weight(), 5);
    }
}

//! The parallel walker engine.
//!
//! The paper launches one walker per vertex (§6.1) and executes all walkers
//! in parallel on the GPU. Here, walkers are executed on the `rayon` shim's
//! thread team (`BINGO_THREADS`/`available_parallelism` sized); each walker
//! derives its own RNG stream from the run seed and its walker index, so
//! results are **bit-identical** for a given seed regardless of the number
//! of threads. Walker closures run concurrently: they must be
//! `Fn + Send + Sync` — all per-walker state (RNG, cursor) lives inside the
//! closure body, never in captures.

use crate::apps::{WalkCursor, WalkSpec};
use crate::model::SharedWalkModel;
use crate::TransitionSampler;
use bingo_graph::VertexId;
use bingo_sampling::rng::Pcg64;
use rand::SeedableRng;
use rayon::prelude::*;

/// The outcome of a walk pass.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WalkResults {
    /// One path per walker, in walker order.
    pub paths: Vec<Vec<VertexId>>,
}

impl WalkResults {
    /// Total number of steps taken across all walkers.
    pub fn total_steps(&self) -> usize {
        self.paths.iter().map(|p| p.len().saturating_sub(1)).sum()
    }

    /// Number of walkers.
    pub fn num_walks(&self) -> usize {
        self.paths.len()
    }

    /// Average walk length (in steps).
    pub fn average_length(&self) -> f64 {
        if self.paths.is_empty() {
            0.0
        } else {
            self.total_steps() as f64 / self.paths.len() as f64
        }
    }

    /// Per-vertex visit counts — the statistic PPR, SimRank and random-walk
    /// domination derive their scores from (§1).
    pub fn visit_counts(&self, num_vertices: usize) -> Vec<u64> {
        let mut counts = vec![0u64; num_vertices];
        for path in &self.paths {
            for &v in path {
                if (v as usize) < num_vertices {
                    counts[v as usize] += 1;
                }
            }
        }
        counts
    }

    /// Normalized visit frequencies.
    pub fn visit_frequencies(&self, num_vertices: usize) -> Vec<f64> {
        let counts = self.visit_counts(num_vertices);
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return vec![0.0; num_vertices];
        }
        counts.iter().map(|&c| c as f64 / total as f64).collect()
    }
}

/// Runs walk applications over any [`TransitionSampler`].
#[derive(Debug, Clone, Copy)]
pub struct WalkEngine {
    /// Seed from which every walker's RNG stream is derived.
    pub seed: u64,
}

impl Default for WalkEngine {
    fn default() -> Self {
        WalkEngine { seed: 0x5EED }
    }
}

impl WalkEngine {
    /// Create a walk engine with the given seed.
    pub fn new(seed: u64) -> Self {
        WalkEngine { seed }
    }

    /// Run the application from the given start vertices, one walker per
    /// start, in parallel.
    pub fn run<S>(&self, sampler: &S, spec: &WalkSpec, starts: &[VertexId]) -> WalkResults
    where
        S: TransitionSampler + ?Sized,
    {
        self.run_model(sampler, &spec.to_model(), starts)
    }

    /// Run an arbitrary [`WalkModel`](crate::model::WalkModel) from the
    /// given start vertices, one walker per start, in parallel. This is the
    /// execution primitive; [`WalkEngine::run`] is sugar over it for the
    /// built-in specs.
    pub fn run_model<S>(
        &self,
        sampler: &S,
        model: &SharedWalkModel,
        starts: &[VertexId],
    ) -> WalkResults
    where
        S: TransitionSampler + ?Sized,
    {
        let seed = self.seed;
        let paths: Vec<Vec<VertexId>> = starts
            .par_iter()
            .enumerate()
            .map(|(i, &start)| {
                let mut rng = Pcg64::seed_from_u64(seed ^ (i as u64).wrapping_mul(0x9E37_79B9));
                let mut cursor = WalkCursor::with_model(model.clone(), start);
                while cursor.step(sampler, &mut rng).is_some() {}
                cursor.into_path()
            })
            .collect();
        WalkResults { paths }
    }

    /// Run the application with one walker per vertex — the paper's default
    /// walker configuration (§6.1: "we initialize the vertex count number of
    /// random walkers").
    pub fn run_all_vertices<S>(&self, sampler: &S, spec: &WalkSpec) -> WalkResults
    where
        S: TransitionSampler + ?Sized,
    {
        let starts: Vec<VertexId> = (0..sampler.num_vertices() as VertexId).collect();
        self.run(sampler, spec, &starts)
    }

    /// One walker per vertex, for an arbitrary model.
    pub fn run_all_vertices_model<S>(&self, sampler: &S, model: &SharedWalkModel) -> WalkResults
    where
        S: TransitionSampler + ?Sized,
    {
        let starts: Vec<VertexId> = (0..sampler.num_vertices() as VertexId).collect();
        self.run_model(sampler, model, &starts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::{DeepWalkConfig, PprConfig};
    use bingo_core::{BingoConfig, BingoEngine};
    use bingo_graph::{Bias, DynamicGraph};

    fn ring_engine(n: usize) -> BingoEngine {
        // Directed ring with a shortcut, all biases 1 except the shortcut.
        let mut g = DynamicGraph::new(n);
        for v in 0..n {
            g.insert_edge(v as VertexId, ((v + 1) % n) as VertexId, Bias::from_int(1))
                .unwrap();
        }
        g.insert_edge(0, (n / 2) as VertexId, Bias::from_int(3))
            .unwrap();
        BingoEngine::build(&g, BingoConfig::default()).unwrap()
    }

    #[test]
    fn one_walker_per_start_vertex() {
        let engine = ring_engine(16);
        let walk_engine = WalkEngine::new(7);
        let spec = WalkSpec::DeepWalk(DeepWalkConfig { walk_length: 20 });
        let results = walk_engine.run(&engine, &spec, &[0, 5, 9]);
        assert_eq!(results.num_walks(), 3);
        assert_eq!(results.paths[0][0], 0);
        assert_eq!(results.paths[1][0], 5);
        assert_eq!(results.paths[2][0], 9);
        assert_eq!(results.total_steps(), 60);
        assert!((results.average_length() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn run_all_vertices_launches_vertex_count_walkers() {
        let engine = ring_engine(32);
        let walk_engine = WalkEngine::default();
        let spec = WalkSpec::DeepWalk(DeepWalkConfig { walk_length: 5 });
        let results = walk_engine.run_all_vertices(&engine, &spec);
        assert_eq!(results.num_walks(), 32);
    }

    #[test]
    fn results_are_deterministic_for_a_seed() {
        let engine = ring_engine(16);
        let spec = WalkSpec::Ppr(PprConfig::default());
        let a = WalkEngine::new(11).run_all_vertices(&engine, &spec);
        let b = WalkEngine::new(11).run_all_vertices(&engine, &spec);
        let c = WalkEngine::new(12).run_all_vertices(&engine, &spec);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn visit_counts_cover_all_visited_vertices() {
        let engine = ring_engine(8);
        let spec = WalkSpec::DeepWalk(DeepWalkConfig { walk_length: 16 });
        let results = WalkEngine::new(3).run_all_vertices(&engine, &spec);
        let counts = results.visit_counts(8);
        // Every vertex is a start vertex, so every count is at least 1.
        assert!(counts.iter().all(|&c| c >= 1));
        let freqs = results.visit_frequencies(8);
        assert!((freqs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_results_are_harmless() {
        let results = WalkResults::default();
        assert_eq!(results.total_steps(), 0);
        assert_eq!(results.average_length(), 0.0);
        assert_eq!(results.visit_frequencies(4), vec![0.0; 4]);
    }
}

//! The paper's evaluation workflow (§6.1).
//!
//! One evaluation run consists of `R` rounds (10 in the paper); each round
//! ingests `BATCHSIZE` graph updates (100 K in the paper) and then performs
//! the graph application — a full walk pass with one walker per vertex. The
//! total time over all rounds is what Table 3 reports; the per-phase split
//! (update time vs. walk time) is what Figures 13 and 16 report.

use crate::apps::WalkSpec;
use crate::engine::{WalkEngine, WalkResults};
use crate::DynamicWalkSystem;
use bingo_graph::UpdateBatch;
use std::time::Duration;

/// How updates are handed to the system under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestMode {
    /// One update at a time (low-latency streaming ingestion).
    Streaming,
    /// The whole batch at once (high-throughput batched ingestion).
    Batched,
}

/// Statistics returned by a system after ingesting one batch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Number of update events applied.
    pub applied: usize,
    /// Number of events skipped (e.g. deletions of missing edges).
    pub skipped: usize,
    /// Wall-clock time spent ingesting.
    pub elapsed: Duration,
}

/// Per-round measurements.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundReport {
    /// Updates applied in this round.
    pub updates_applied: usize,
    /// Time spent ingesting updates.
    pub update_time: Duration,
    /// Time spent running the walk application.
    pub walk_time: Duration,
    /// Total steps walked this round.
    pub walk_steps: usize,
}

/// Aggregate measurements over all rounds.
#[derive(Debug, Clone, Default)]
pub struct WorkflowReport {
    /// The system's name.
    pub system: &'static str,
    /// The application's name.
    pub application: &'static str,
    /// Per-round breakdown.
    pub rounds: Vec<RoundReport>,
    /// Memory used by the system after the final round, in bytes.
    pub memory_bytes: usize,
}

impl WorkflowReport {
    /// Total update-ingestion time.
    pub fn total_update_time(&self) -> Duration {
        self.rounds.iter().map(|r| r.update_time).sum()
    }

    /// Total walk time.
    pub fn total_walk_time(&self) -> Duration {
        self.rounds.iter().map(|r| r.walk_time).sum()
    }

    /// Total runtime (updates + walks), the quantity Table 3 reports.
    pub fn total_time(&self) -> Duration {
        self.total_update_time() + self.total_walk_time()
    }

    /// Total updates applied over all rounds.
    pub fn total_updates(&self) -> usize {
        self.rounds.iter().map(|r| r.updates_applied).sum()
    }

    /// Update ingestion throughput in updates per second.
    pub fn update_throughput(&self) -> f64 {
        let secs = self.total_update_time().as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.total_updates() as f64 / secs
        }
    }
}

/// The evaluation workflow driver.
#[derive(Debug, Clone, Copy)]
pub struct EvaluationWorkflow {
    /// Walk application to run after every round of updates.
    pub spec: WalkSpec,
    /// Update ingestion mode.
    pub mode: IngestMode,
    /// Seed for the walker RNG streams.
    pub seed: u64,
}

impl EvaluationWorkflow {
    /// Create a workflow for the given application and ingestion mode.
    pub fn new(spec: WalkSpec, mode: IngestMode) -> Self {
        EvaluationWorkflow {
            spec,
            mode,
            seed: 0xB1460,
        }
    }

    /// Run the workflow: for every batch, ingest it and then perform a full
    /// walk pass (one walker per vertex).
    pub fn run<S: DynamicWalkSystem + ?Sized>(
        &self,
        system: &mut S,
        batches: &[UpdateBatch],
    ) -> WorkflowReport {
        let walk_engine = WalkEngine::new(self.seed);
        let mut rounds = Vec::with_capacity(batches.len());
        for batch in batches {
            let ingest = system.ingest(batch, self.mode);
            // lint:allow(determinism): RoundReport wall-time measurement
            // (bench reporting); sampling is seed-driven and unaffected.
            let walk_start = std::time::Instant::now();
            let results = walk_engine.run_all_vertices(system, &self.spec);
            let walk_time = walk_start.elapsed();
            rounds.push(RoundReport {
                updates_applied: ingest.applied,
                update_time: ingest.elapsed,
                walk_time,
                walk_steps: results.total_steps(),
            });
        }
        WorkflowReport {
            system: system.name(),
            application: self.spec.name(),
            rounds,
            memory_bytes: system.memory_bytes(),
        }
    }

    /// Run only the walk phase (no updates), returning the walk results.
    /// Used by experiments that study sampling in isolation (Figure 16(b)).
    pub fn walk_only<S: DynamicWalkSystem + ?Sized>(&self, system: &S) -> WalkResults {
        WalkEngine::new(self.seed).run_all_vertices(system, &self.spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::DeepWalkConfig;
    use bingo_core::{BingoConfig, BingoEngine};
    use bingo_graph::generators::{BiasDistribution, GraphGenerator};
    use bingo_graph::updates::{UpdateKind, UpdateStreamBuilder};
    use bingo_sampling::rng::Pcg64;
    use rand::SeedableRng;

    fn setup(seed: u64) -> (BingoEngine, Vec<UpdateBatch>) {
        let mut rng = Pcg64::seed_from_u64(seed);
        let mut graph = GraphGenerator::ErdosRenyi {
            vertices: 80,
            edges: 900,
        }
        .generate(BiasDistribution::UniformInt { lo: 1, hi: 31 }, &mut rng);
        let stream =
            UpdateStreamBuilder::new(UpdateKind::Mixed, 300).build(&mut graph, 300, &mut rng);
        let batches = stream.chunks(100);
        let engine = BingoEngine::build(&graph, BingoConfig::default()).unwrap();
        (engine, batches)
    }

    #[test]
    fn workflow_runs_all_rounds_and_counts_time() {
        let (mut engine, batches) = setup(1);
        let workflow = EvaluationWorkflow::new(
            WalkSpec::DeepWalk(DeepWalkConfig { walk_length: 10 }),
            IngestMode::Batched,
        );
        let report = workflow.run(&mut engine, &batches);
        assert_eq!(report.rounds.len(), 3);
        assert_eq!(report.system, "Bingo");
        assert_eq!(report.application, "DeepWalk");
        assert!(report.total_updates() > 0);
        assert!(report.total_time() >= report.total_walk_time());
        assert!(report.memory_bytes > 0);
        assert!(report.update_throughput() > 0.0);
        assert!(report.rounds.iter().all(|r| r.walk_steps > 0));
        engine.check_invariants().unwrap();
    }

    #[test]
    fn streaming_and_batched_modes_apply_the_same_updates() {
        let (engine, batches) = setup(2);
        let mut streaming_engine = engine.clone();
        let mut batched_engine = engine;
        let spec = WalkSpec::DeepWalk(DeepWalkConfig { walk_length: 5 });
        let streaming = EvaluationWorkflow::new(spec, IngestMode::Streaming)
            .run(&mut streaming_engine, &batches);
        let batched =
            EvaluationWorkflow::new(spec, IngestMode::Batched).run(&mut batched_engine, &batches);
        assert_eq!(streaming.total_updates(), batched.total_updates());
        assert_eq!(streaming_engine.num_edges(), batched_engine.num_edges());
    }

    #[test]
    fn walk_only_does_not_mutate_the_system() {
        let (engine, _) = setup(3);
        let edges_before = engine.num_edges();
        let workflow = EvaluationWorkflow::new(
            WalkSpec::DeepWalk(DeepWalkConfig { walk_length: 8 }),
            IngestMode::Batched,
        );
        let results = workflow.walk_only(&engine);
        assert_eq!(results.num_walks(), engine.num_vertices());
        assert_eq!(engine.num_edges(), edges_before);
    }

    #[test]
    fn empty_batch_list_produces_empty_report() {
        let (mut engine, _) = setup(4);
        let workflow = EvaluationWorkflow::new(
            WalkSpec::DeepWalk(DeepWalkConfig { walk_length: 5 }),
            IngestMode::Streaming,
        );
        let report = workflow.run(&mut engine, &[]);
        assert!(report.rounds.is_empty());
        assert_eq!(report.total_updates(), 0);
        assert_eq!(report.update_throughput(), 0.0);
    }
}

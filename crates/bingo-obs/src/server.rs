//! The exposition server: a minimal HTTP/1.0 responder on
//! `std::net::TcpListener` serving the introspection endpoints.
//!
//! No HTTP library, no event loop, no dedicated thread pool: the accept
//! loop runs as one extra worker on the persistent rayon pool (grown by
//! [`rayon::spawn_blocking`] so walk throughput is untouched), and each
//! connection is handled as an ordinary pool job. Responses are
//! `Connection: close` HTTP/1.0 with explicit `Content-Length`, which
//! every Prometheus scraper, curl, and two-line `TcpStream` fetcher
//! understands.
//!
//! | endpoint   | body |
//! |------------|------|
//! | `/metrics` | Prometheus text format over the whole registry |
//! | `/status`  | JSON: watchdog + service + gateway + pool + flight |
//! | `/trace`   | sampled walker lifecycle lines from the [`Tracer`] ring |
//! | `/flight`  | flight-recorder dump (most recent structured events) |
//! | `/healthz` | `ok` (200) or a stall description (503) |
//!
//! [`Tracer`]: bingo_telemetry::Tracer

use crate::watchdog::{Watchdog, WatchdogConfig};
use bingo_gateway::Gateway;
use bingo_service::WalkService;
use bingo_telemetry::json::{JsonArray, JsonObject};
use bingo_telemetry::{names, Counter, Telemetry};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Configuration for [`ObsServer::serve`].
#[derive(Debug, Clone)]
pub struct ObsConfig {
    /// Address to bind, e.g. `127.0.0.1:9898`; port 0 picks an ephemeral
    /// port (read it back from [`ObsServer::local_addr`]).
    pub addr: String,
    /// Stall thresholds for the lazy watchdog behind `/healthz`.
    pub watchdog: WatchdogConfig,
    /// Per-connection read timeout: a client that connects and then says
    /// nothing cannot pin a pool worker.
    pub read_timeout: Duration,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            addr: "127.0.0.1:0".to_string(),
            watchdog: WatchdogConfig::default(),
            read_timeout: Duration::from_secs(2),
        }
    }
}

struct ServerInner {
    telemetry: Telemetry,
    service: Option<Arc<WalkService>>,
    gateway: Option<Arc<Gateway>>,
    watchdog: Watchdog,
    errors: Counter,
    read_timeout: Duration,
    shutdown: AtomicBool,
}

/// Handle to a running exposition server. Dropping it (or calling
/// [`ObsServer::shutdown`]) stops the accept loop.
pub struct ObsServer {
    inner: Arc<ServerInner>,
    local_addr: SocketAddr,
}

impl std::fmt::Debug for ObsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsServer")
            .field("local_addr", &self.local_addr)
            .finish()
    }
}

impl ObsServer {
    /// Bind `config.addr`, install the flight-recorder panic hook, and
    /// start serving on the persistent worker pool. Returns once the
    /// listener is bound; the accept loop runs in the background.
    pub fn serve(
        config: ObsConfig,
        telemetry: Telemetry,
        service: Option<Arc<WalkService>>,
        gateway: Option<Arc<Gateway>>,
    ) -> std::io::Result<ObsServer> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        telemetry.flight().install_panic_hook();
        let inner = Arc::new(ServerInner {
            watchdog: Watchdog::new(config.watchdog, &telemetry),
            errors: telemetry.counter(names::OBS_HTTP_ERRORS),
            telemetry,
            service,
            gateway,
            read_timeout: config.read_timeout,
            shutdown: AtomicBool::new(false),
        });
        let accept_inner = Arc::clone(&inner);
        rayon::spawn_blocking(move || accept_loop(listener, accept_inner));
        Ok(ObsServer { inner, local_addr })
    }

    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stop the accept loop. Idempotent; also runs on drop.
    pub fn shutdown(&self) {
        if self.inner.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        // Wake the blocking accept() with a throwaway connection so the
        // loop observes the flag and exits.
        if let Ok(stream) = TcpStream::connect(self.local_addr) {
            drop(stream);
        }
    }
}

impl Drop for ObsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, inner: Arc<ServerInner>) {
    loop {
        let conn = listener.accept();
        if inner.shutdown.load(Ordering::Acquire) {
            return;
        }
        match conn {
            Ok((stream, _peer)) => {
                let conn_inner = Arc::clone(&inner);
                rayon::spawn(move || handle_conn(stream, &conn_inner));
            }
            Err(err) => {
                inner.errors.inc();
                eprintln!("obs: accept failed: {err}");
            }
        }
    }
}

/// Read a request head: everything up to the blank line, bounded so a
/// hostile client cannot make us buffer without limit.
fn read_request_head(stream: &mut TcpStream) -> std::io::Result<String> {
    const MAX_HEAD: usize = 8 * 1024;
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    loop {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        buf.extend_from_slice(&chunk[..n]);
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() >= MAX_HEAD {
            break;
        }
    }
    Ok(String::from_utf8_lossy(&buf).into_owned())
}

fn handle_conn(mut stream: TcpStream, inner: &ServerInner) {
    let _ = stream.set_read_timeout(Some(inner.read_timeout));
    let head = match read_request_head(&mut stream) {
        Ok(head) => head,
        Err(err) => {
            inner.errors.inc();
            eprintln!("obs: request read failed: {err}");
            return;
        }
    };
    let (status, content_type, body) = respond(&head, inner);
    let response = format!(
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    if let Err(err) = stream
        .write_all(response.as_bytes())
        .and_then(|()| stream.flush())
    {
        inner.errors.inc();
        eprintln!("obs: response write failed: {err}");
    }
}

const TEXT: &str = "text/plain; charset=utf-8";
const PROM: &str = "text/plain; version=0.0.4";
const JSON: &str = "application/json";

/// Dispatch one parsed request to its endpoint handler.
fn respond(head: &str, inner: &ServerInner) -> (&'static str, &'static str, String) {
    let mut parts = head.split_whitespace();
    let (method, target) = match (parts.next(), parts.next()) {
        (Some(m), Some(t)) => (m, t),
        _ => {
            inner.errors.inc();
            return ("400 Bad Request", TEXT, "malformed request\n".to_string());
        }
    };
    if method != "GET" {
        inner.errors.inc();
        return ("405 Method Not Allowed", TEXT, "GET only\n".to_string());
    }
    let path = target.split('?').next().unwrap_or(target);
    let endpoint = match path {
        "/metrics" | "/status" | "/trace" | "/flight" | "/healthz" => path,
        _ => "other",
    };
    inner
        .telemetry
        .counter_with(names::OBS_HTTP_REQUESTS, &[("endpoint", endpoint)])
        .inc();
    match path {
        "/metrics" => ("200 OK", PROM, render_metrics(inner)),
        "/status" => ("200 OK", JSON, render_status(inner)),
        "/trace" => ("200 OK", TEXT, render_trace(inner)),
        "/flight" => ("200 OK", TEXT, inner.telemetry.flight().dump()),
        "/healthz" => {
            let report = inner
                .watchdog
                .check(inner.service.as_deref(), inner.gateway.as_deref());
            if report.healthy() {
                ("200 OK", TEXT, "ok\n".to_string())
            } else {
                let mut body = report.render();
                body.push('\n');
                ("503 Service Unavailable", TEXT, body)
            }
        }
        _ => {
            inner.errors.inc();
            (
                "404 Not Found",
                TEXT,
                "unknown endpoint; try /metrics /status /trace /flight /healthz\n".to_string(),
            )
        }
    }
}

fn render_metrics(inner: &ServerInner) -> String {
    // Fold point-in-time sources into the registry so one scrape sees
    // everything: pool profile counters and the flight ring's totals.
    bingo_service::record_pool_profile(&inner.telemetry);
    let flight = inner.telemetry.flight();
    inner
        .telemetry
        .counter(names::OBS_FLIGHT_RECORDED)
        .set(flight.recorded());
    inner
        .telemetry
        .counter(names::OBS_FLIGHT_DROPPED)
        .set(flight.dropped());
    inner.telemetry.snapshot().to_prometheus()
}

fn render_trace(inner: &ServerInner) -> String {
    match inner.telemetry.tracer() {
        Some(tracer) => tracer.dump(),
        None => "tracing off (enable detailed telemetry with a trace sample rate)\n".to_string(),
    }
}

fn render_status(inner: &ServerInner) -> String {
    let report = inner
        .watchdog
        .check(inner.service.as_deref(), inner.gateway.as_deref());
    let snapshot = inner.telemetry.snapshot();
    let mut root = JsonObject::new();
    root.field_raw(
        "uptime_s",
        &format!("{:.3}", inner.telemetry.uptime().as_secs_f64()),
    );
    root.field_bool("healthy", report.healthy());

    let mut dog = JsonObject::new();
    let mut stalled = JsonArray::new();
    for s in &report.stalled_shards {
        let mut obj = JsonObject::new();
        obj.field_num("shard", s.shard);
        obj.field_num("queue_depth", s.queue_depth);
        obj.field_num("stalled_ms", s.stalled_for.as_millis());
        stalled.push_raw(&obj.finish());
    }
    dog.field_raw("stalled_shards", &stalled.finish());
    dog.field_num(
        "gateway_oldest_queued_ms",
        report
            .gateway_oldest_queued
            .map(|d| d.as_millis())
            .unwrap_or(0),
    );
    dog.field_bool("gateway_stalled", report.gateway_stalled);
    dog.field_num("checks", snapshot.counter(names::OBS_WATCHDOG_CHECKS, &[]));
    dog.field_num("trips", snapshot.counter(names::OBS_WATCHDOG_TRIPS, &[]));
    root.field_raw("watchdog", &dog.finish());

    if let Some(service) = inner.service.as_deref() {
        let stats = service.stats();
        let mut svc = JsonObject::new();
        svc.field_num("shards", stats.per_shard.len());
        svc.field_num("total_steps", stats.total_steps());
        svc.field_raw("steps_per_sec", &format!("{:.1}", stats.steps_per_sec()));
        svc.field_num("walks_completed", stats.total_walks_completed());
        svc.field_num("queue_depth", stats.total_queue_depth());
        svc.field_raw(
            "hottest_step_share",
            &format!("{:.4}", stats.hottest_step_share()),
        );
        // Snapshot-handle negotiation and the serialized-transport byte
        // flow (zero until a forward offers a handle / ships a frame).
        svc.field_num("handle_offers", stats.total_handle_offers());
        svc.field_num("handle_hits", stats.total_handle_hits());
        svc.field_num("body_requests", stats.total_body_requests());
        svc.field_raw(
            "handle_hit_rate",
            &format!("{:.4}", stats.handle_hit_rate()),
        );
        svc.field_num("transport_bytes_sent", stats.total_transport_bytes_sent());
        svc.field_num("transport_bytes_recv", stats.total_transport_bytes_recv());
        let total_steps = stats.total_steps().max(1);
        let mut shards = JsonArray::new();
        for sh in &stats.per_shard {
            let mut obj = JsonObject::new();
            obj.field_num("shard", sh.shard);
            obj.field_num("steps", sh.steps);
            obj.field_raw(
                "step_share",
                &format!("{:.4}", sh.steps as f64 / total_steps as f64),
            );
            obj.field_num("queue_depth", sh.queue_depth);
            obj.field_num("epoch", sh.epoch);
            shards.push_raw(&obj.finish());
        }
        svc.field_raw("per_shard", &shards.finish());
        root.field_raw("service", &svc.finish());
    } else {
        root.field_raw("service", "null");
    }

    if let Some(gateway) = inner.gateway.as_deref() {
        let stats = gateway.stats();
        let mut gw = JsonObject::new();
        gw.field_num("window", stats.window);
        gw.field_num("in_flight_walkers", stats.in_flight_walkers);
        gw.field_num(
            "queued_walkers",
            stats
                .per_tenant
                .iter()
                .map(|t| t.queued_walkers)
                .sum::<usize>(),
        );
        let mut tenants = JsonArray::new();
        for t in &stats.per_tenant {
            let mut obj = JsonObject::new();
            obj.field_str("tenant", t.tenant.as_str());
            obj.field_num("weight", t.weight);
            obj.field_num("queued_walkers", t.queued_walkers);
            obj.field_num("completed_walks", t.completed_walks);
            obj.field_num("completed_steps", t.completed_steps);
            obj.field_raw(
                "step_share",
                &format!("{:.4}", stats.completed_step_share(&t.tenant)),
            );
            tenants.push_raw(&obj.finish());
        }
        gw.field_raw("per_tenant", &tenants.finish());
        root.field_raw("gateway", &gw.finish());
    } else {
        root.field_raw("gateway", "null");
    }

    let mut pool = JsonObject::new();
    pool.field_num("workers", rayon::current_num_threads());
    pool.field_num("calls", snapshot.counter(names::POOL_CALLS, &[]));
    pool.field_num(
        "chunks_claimed",
        snapshot.counter(names::POOL_CHUNKS_CLAIMED, &[]),
    );
    pool.field_num("steals", snapshot.counter(names::RUNTIME_POOL_STEALS, &[]));
    pool.field_num("tasks", snapshot.counter(names::RUNTIME_POOL_TASKS, &[]));
    root.field_raw("pool", &pool.finish());

    let flight = inner.telemetry.flight();
    let mut fl = JsonObject::new();
    fl.field_num("capacity", flight.capacity());
    fl.field_num("recorded", flight.recorded());
    fl.field_num("dropped", flight.dropped());
    root.field_raw("flight", &fl.finish());

    let mut body = root.finish();
    body.push('\n');
    body
}

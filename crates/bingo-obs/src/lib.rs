//! `bingo-obs` — the introspection plane for a running Bingo stack.
//!
//! The service crate answers "run walks fast"; this crate answers "what
//! is the stack doing *right now*, and is it healthy?" without attaching
//! a debugger or restarting with logging. Three pieces:
//!
//! * **Exposition server** ([`ObsServer`]): a dependency-free HTTP/1.0
//!   responder on `std::net::TcpListener` serving `/metrics` (Prometheus
//!   text format), `/status` (JSON over service/gateway/pool/flight
//!   state), `/trace` (sampled walker lifecycles), `/flight` (flight
//!   recorder dump) and `/healthz`. Connections are handled as jobs on
//!   the persistent worker pool — no dedicated serving threads beyond
//!   the accept loop itself.
//! * **Flight recorder** (re-exported from `bingo-telemetry`): a
//!   lock-free bounded ring of structured runtime events — steals,
//!   saturation bounces, window moves, epoch advances, shard
//!   park/unpark — dumped via `/flight` and automatically on panic.
//! * **Stall watchdog** ([`Watchdog`]): a lazy progress-heartbeat check
//!   evaluated on `/healthz` and `/status` reads (no background clock
//!   thread) that flips `/healthz` to 503 when a shard sits on queued
//!   work without progress, or when the gateway's oldest queued chunk
//!   ages past a threshold.
//!
//! Everything is opt-in: with `BINGO_OBS` unset and no [`ObsServer`]
//! constructed, nothing binds, no thread starts, and the serving path
//! is untouched.
//!
//! ```no_run
//! use bingo_telemetry::Telemetry;
//!
//! let telemetry = Telemetry::enabled(7);
//! // ... build a WalkService / Gateway with this telemetry ...
//! let obs = bingo_obs::ObsServer::serve(
//!     bingo_obs::ObsConfig::default(), // 127.0.0.1, ephemeral port
//!     telemetry,
//!     None,
//!     None,
//! )
//! .expect("bind loopback");
//! eprintln!("metrics at http://{}/metrics", obs.local_addr());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod server;
pub mod watchdog;

pub use server::{ObsConfig, ObsServer};
pub use watchdog::{StalledShard, Watchdog, WatchdogConfig, WatchdogReport, GATEWAY_SENTINEL};

// The flight recorder lives in bingo-telemetry (so the service can record
// into it without depending on this crate); re-export it here because the
// obs plane is where users meet it.
pub use bingo_telemetry::{FlightEvent, FlightEventKind, FlightRecorder};

use bingo_gateway::Gateway;
use bingo_service::WalkService;
use bingo_telemetry::Telemetry;
use std::sync::Arc;

/// Environment variable holding the exposition bind address
/// (`host:port`, e.g. `127.0.0.1:9898`; port `0` for ephemeral).
pub const OBS_ENV: &str = "BINGO_OBS";

/// Start the exposition server if `BINGO_OBS` is set to a bind address.
///
/// Unset or empty means "observability off": nothing binds, no task is
/// spawned, and `None` comes back immediately — the zero-overhead
/// default. A set-but-unbindable address logs to stderr and returns
/// `None` rather than taking the stack down over a diagnostics port.
pub fn serve_from_env(
    telemetry: &Telemetry,
    service: Option<Arc<WalkService>>,
    gateway: Option<Arc<Gateway>>,
) -> Option<ObsServer> {
    let addr = std::env::var(OBS_ENV).ok()?;
    if addr.trim().is_empty() {
        return None;
    }
    let config = ObsConfig {
        addr: addr.trim().to_string(),
        ..ObsConfig::default()
    };
    match ObsServer::serve(config, telemetry.clone(), service, gateway) {
        Ok(server) => Some(server),
        Err(err) => {
            eprintln!("obs: cannot bind {addr}: {err}; continuing without exposition");
            None
        }
    }
}

//! The stall watchdog: lazy progress-heartbeat checks over the serving
//! stack.
//!
//! The watchdog owns **no thread and no timer**. Every evaluation happens
//! inside a caller's read — the exposition server runs one on `/healthz`
//! and `/status` — by comparing the stack's progress counters against the
//! values remembered from the previous evaluation:
//!
//! * a **shard** is stalled when its inbox holds queued messages while its
//!   progress counter (steps + walker arrivals + update batches) has not
//!   moved for longer than [`WatchdogConfig::stall_after`] across
//!   evaluations;
//! * the **gateway** is stalled when its oldest queued chunk
//!   ([`Gateway::oldest_queued_age`]) has waited longer than
//!   [`WatchdogConfig::gateway_stall_after`].
//!
//! A trip flips `/healthz` to 503, bumps `obs.watchdog.trips`, and records
//! a [`FlightEventKind::WatchdogTrip`] in the flight recorder — once per
//! stall episode, not once per poll, so the bounded ring is not flooded by
//! a wedged shard being polled in a loop. Because detection needs two
//! evaluations separated by the threshold, a monitor polling `/healthz`
//! at any steady cadence converges on the right verdict; a single cold
//! read can only ever say "healthy so far".

use bingo_gateway::Gateway;
use bingo_service::WalkService;
use bingo_telemetry::{names, Counter, FlightEventKind, FlightRecorder, Telemetry};
use parking_lot::Mutex;
use std::time::{Duration, Instant};

/// Sentinel "shard" id used for gateway trips in flight events, where the
/// payload schema only carries shard-shaped integers.
pub const GATEWAY_SENTINEL: u64 = u64::MAX;

/// Stall thresholds for the [`Watchdog`].
#[derive(Debug, Clone, Copy)]
pub struct WatchdogConfig {
    /// How long a shard may sit with a non-empty inbox and a frozen
    /// progress counter before it is declared stalled.
    pub stall_after: Duration,
    /// How long the gateway's oldest queued chunk may wait before the
    /// gateway is declared stalled.
    pub gateway_stall_after: Duration,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            stall_after: Duration::from_secs(2),
            gateway_stall_after: Duration::from_secs(10),
        }
    }
}

/// One stalled shard in a [`WatchdogReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StalledShard {
    /// The shard that stopped making progress.
    pub shard: usize,
    /// Messages sitting in its inbox at the check.
    pub queue_depth: i64,
    /// How long the progress counter has been frozen.
    pub stalled_for: Duration,
}

/// Outcome of one lazy watchdog evaluation.
#[derive(Debug, Clone, Default)]
pub struct WatchdogReport {
    /// Shards holding queued work without progress past the threshold.
    pub stalled_shards: Vec<StalledShard>,
    /// Age of the gateway's oldest queued chunk, when one is queued.
    pub gateway_oldest_queued: Option<Duration>,
    /// Whether that age exceeds the gateway threshold.
    pub gateway_stalled: bool,
}

impl WatchdogReport {
    /// `true` when nothing is stalled.
    pub fn healthy(&self) -> bool {
        self.stalled_shards.is_empty() && !self.gateway_stalled
    }

    /// One-line summary for the `/healthz` body.
    pub fn render(&self) -> String {
        if self.healthy() {
            return "ok".to_string();
        }
        let mut parts = Vec::new();
        for s in &self.stalled_shards {
            parts.push(format!(
                "shard {} stalled {}ms with {} queued",
                s.shard,
                s.stalled_for.as_millis(),
                s.queue_depth
            ));
        }
        if self.gateway_stalled {
            parts.push(format!(
                "gateway oldest queued chunk waited {}ms",
                self.gateway_oldest_queued.unwrap_or_default().as_millis()
            ));
        }
        format!("stalled: {}", parts.join("; "))
    }
}

/// Per-shard memory between evaluations.
#[derive(Debug, Clone, Copy)]
struct ShardMark {
    /// Progress counter value at the last observed change.
    progress: u64,
    /// When that change was observed.
    since: Instant,
    /// Whether this stall episode already recorded its trip.
    tripped: bool,
}

#[derive(Debug, Default)]
struct WatchdogState {
    shards: Vec<Option<ShardMark>>,
    gateway_tripped: bool,
}

/// The lazy stall watchdog. See the module docs for the detection model.
pub struct Watchdog {
    config: WatchdogConfig,
    state: Mutex<WatchdogState>,
    checks: Counter,
    trips: Counter,
    flight: FlightRecorder,
}

impl std::fmt::Debug for Watchdog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Watchdog")
            .field("config", &self.config)
            .field("checks", &self.checks.get())
            .field("trips", &self.trips.get())
            .finish()
    }
}

impl Watchdog {
    /// A watchdog recording its counters and trip events into `telemetry`.
    pub fn new(config: WatchdogConfig, telemetry: &Telemetry) -> Self {
        Watchdog {
            config,
            state: Mutex::new_named(WatchdogState::default(), "obs.watchdog.state"),
            checks: telemetry.counter(names::OBS_WATCHDOG_CHECKS),
            trips: telemetry.counter(names::OBS_WATCHDOG_TRIPS),
            flight: telemetry.flight().clone(),
        }
    }

    /// The configured thresholds.
    pub fn config(&self) -> WatchdogConfig {
        self.config
    }

    /// Trips recorded so far (shard episodes + gateway episodes).
    pub fn trips(&self) -> u64 {
        self.trips.get()
    }

    /// Run one lazy evaluation against the current stack state.
    pub fn check(
        &self,
        service: Option<&WalkService>,
        gateway: Option<&Gateway>,
    ) -> WatchdogReport {
        self.checks.inc();
        // Observe the stack *before* taking the watchdog lock: stats()
        // and oldest_queued_age() acquire service/gateway locks, and
        // nesting them under obs.watchdog.state would add lock-order
        // edges this crate has no reason to own.
        let observed: Vec<(u64, i64)> = service
            .map(|s| {
                s.stats()
                    .per_shard
                    .iter()
                    .map(|sh| {
                        (
                            sh.steps + sh.walkers_received + sh.update_batches,
                            sh.queue_depth,
                        )
                    })
                    .collect()
            })
            .unwrap_or_default();
        let gateway_oldest = gateway.and_then(|g| g.oldest_queued_age());
        let now = Instant::now();

        let mut report = WatchdogReport {
            gateway_oldest_queued: gateway_oldest,
            ..WatchdogReport::default()
        };
        let mut state = self.state.lock();
        if state.shards.len() < observed.len() {
            state.shards.resize(observed.len(), None);
        }
        for (shard, &(progress, depth)) in observed.iter().enumerate() {
            let mark = &mut state.shards[shard];
            let fresh = ShardMark {
                progress,
                since: now,
                tripped: false,
            };
            match mark {
                Some(m) if m.progress == progress && depth > 0 => {
                    let stalled_for = now.duration_since(m.since);
                    if stalled_for >= self.config.stall_after {
                        report.stalled_shards.push(StalledShard {
                            shard,
                            queue_depth: depth,
                            stalled_for,
                        });
                        if !m.tripped {
                            m.tripped = true;
                            self.trips.inc();
                            self.flight.record(FlightEventKind::WatchdogTrip {
                                shard: shard as u64,
                                depth: depth.max(0) as u64,
                            });
                        }
                    }
                }
                // Progress moved, or the inbox is empty: restart the
                // heartbeat window (an empty idle shard is healthy no
                // matter how long its counters sit still).
                _ => *mark = Some(fresh),
            }
        }
        match gateway_oldest {
            Some(age) if age >= self.config.gateway_stall_after => {
                report.gateway_stalled = true;
                if !state.gateway_tripped {
                    state.gateway_tripped = true;
                    self.trips.inc();
                    let queued = gateway
                        .map(|g| g.stats().per_tenant.iter().map(|t| t.queued_walkers).sum())
                        .unwrap_or(0usize);
                    self.flight.record(FlightEventKind::WatchdogTrip {
                        shard: GATEWAY_SENTINEL,
                        depth: queued as u64,
                    });
                }
            }
            _ => state.gateway_tripped = false,
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stack_is_healthy() {
        let telemetry = Telemetry::disabled();
        let dog = Watchdog::new(WatchdogConfig::default(), &telemetry);
        let report = dog.check(None, None);
        assert!(report.healthy());
        assert_eq!(report.render(), "ok");
        assert_eq!(
            telemetry
                .snapshot()
                .counter(names::OBS_WATCHDOG_CHECKS, &[]),
            1
        );
        assert_eq!(dog.trips(), 0);
    }

    #[test]
    fn report_render_names_the_stall() {
        let report = WatchdogReport {
            stalled_shards: vec![StalledShard {
                shard: 2,
                queue_depth: 5,
                stalled_for: Duration::from_millis(1500),
            }],
            gateway_oldest_queued: Some(Duration::from_millis(12_000)),
            gateway_stalled: true,
        };
        assert!(!report.healthy());
        let line = report.render();
        assert!(
            line.contains("shard 2 stalled 1500ms with 5 queued"),
            "{line}"
        );
        assert!(line.contains("gateway oldest queued chunk waited 12000ms"));
    }
}

//! # bingo-baselines
//!
//! CPU reimplementations of the systems the Bingo paper compares against in
//! its evaluation (§6.2). Each baseline reproduces the *algorithmic cost
//! model* of the original system — which is what determines the shape of
//! Table 3 and Figure 16 — rather than its GPU/distributed machinery:
//!
//! * [`KnightKingBaseline`] — per-vertex alias tables (`O(1)` sampling),
//!   rebuilt in `O(d)` whenever a vertex's edges change; node2vec handled by
//!   rejection on top of the static tables (KnightKing's own design).
//! * [`GSamplerBaseline`] — matrix-centric batch sampler: a CSR snapshot plus
//!   per-vertex CDF arrays (inverse transform sampling, `O(log d)` per
//!   sample), fully reconstructed after every round of updates, exactly how
//!   the paper runs gSampler on dynamic workloads.
//! * [`FlowWalkerBaseline`] — no auxiliary sampling structure at all: every
//!   step performs weighted reservoir sampling over the adjacency list
//!   (`O(d)` per step), and updates simply mutate / reload the graph.
//!
//! All three implement [`TransitionSampler`] and [`DynamicWalkSystem`], so
//! the walk applications and the evaluation workflow treat them exactly like
//! the Bingo engine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flowwalker;
pub mod gsampler;
pub mod knightking;

pub use flowwalker::FlowWalkerBaseline;
pub use gsampler::GSamplerBaseline;
pub use knightking::KnightKingBaseline;

pub use bingo_walks::{DynamicWalkSystem, IngestMode, IngestStats, TransitionSampler};

#[cfg(test)]
mod tests {
    use super::*;
    use bingo_core::{BingoConfig, BingoEngine};
    use bingo_graph::dynamic_graph::running_example;
    use bingo_sampling::rng::Pcg64;
    use bingo_sampling::stats::{empirical_distribution, max_abs_deviation};
    use rand::SeedableRng;

    /// Every system (Bingo and the three baselines) must produce the same
    /// transition distribution on the running example — they differ in cost,
    /// not in semantics.
    #[test]
    fn all_systems_agree_on_the_transition_distribution() {
        let graph = running_example();
        let expected = [5.0 / 12.0, 4.0 / 12.0, 3.0 / 12.0];

        let bingo = BingoEngine::build(&graph, BingoConfig::default()).unwrap();
        let kk = KnightKingBaseline::build(&graph);
        let gs = GSamplerBaseline::build(&graph);
        let fw = FlowWalkerBaseline::build(&graph);

        fn check<S: TransitionSampler>(system: &S, expected: &[f64], seed: u64) {
            let mut rng = Pcg64::seed_from_u64(seed);
            let freq = empirical_distribution(
                |r| match system.sample_neighbor(2, r).unwrap() {
                    1 => 0,
                    4 => 1,
                    5 => 2,
                    other => panic!("unexpected neighbor {other}"),
                },
                3,
                200_000,
                &mut rng,
            );
            assert!(
                max_abs_deviation(&freq, expected) < 0.01,
                "distribution mismatch: {freq:?}"
            );
        }
        check(&bingo, &expected, 1);
        check(&kk, &expected, 2);
        check(&gs, &expected, 3);
        check(&fw, &expected, 4);
    }
}

//! KnightKing-style baseline: per-vertex alias tables.
//!
//! KnightKing (SOSP'19) is the CPU random-walk engine the paper uses as its
//! CPU state of the art. For static biased sampling it builds one alias
//! table per vertex (`O(1)` sampling); to handle a graph update it must
//! rebuild the alias table of the affected vertex, which costs `O(d)` — the
//! cost Table 1 attributes to the alias method and the reason Bingo's `O(K)`
//! updates win on high-degree vertices.

use bingo_graph::{DynamicGraph, UpdateBatch, UpdateEvent, VertexId};
use bingo_sampling::{AliasTable, Sampler};
use bingo_walks::{DynamicWalkSystem, IngestMode, IngestStats, TransitionSampler};
use rand::Rng;
use rayon::prelude::*;

/// Per-vertex alias-table sampler with `O(d)` per-vertex rebuild on update.
#[derive(Debug, Clone)]
pub struct KnightKingBaseline {
    graph: DynamicGraph,
    tables: Vec<Option<AliasTable>>,
}

impl KnightKingBaseline {
    /// Build the baseline from a graph snapshot.
    pub fn build(graph: &DynamicGraph) -> Self {
        let graph = graph.clone();
        // Real-graph degree distributions are power-law: most per-vertex
        // alias builds are a handful of nanoseconds, so bound the split
        // granularity — without `with_min_len` the task-dispatch overhead
        // dwarfs the work on the low-degree tail.
        let tables = (0..graph.num_vertices())
            .into_par_iter()
            .with_min_len(64)
            .map(|v| Self::build_table(&graph, v as VertexId))
            .collect();
        KnightKingBaseline { graph, tables }
    }

    fn build_table(graph: &DynamicGraph, v: VertexId) -> Option<AliasTable> {
        let adj = graph.neighbors(v).ok()?;
        if adj.is_empty() {
            return None;
        }
        let weights: Vec<f64> = adj.edges().iter().map(|e| e.bias.value()).collect();
        AliasTable::new(&weights).ok()
    }

    /// Rebuild the alias table of one vertex (`O(d)`).
    fn rebuild_vertex(&mut self, v: VertexId) {
        if (v as usize) < self.tables.len() {
            self.tables[v as usize] = Self::build_table(&self.graph, v);
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &DynamicGraph {
        &self.graph
    }
}

impl TransitionSampler for KnightKingBaseline {
    fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    fn degree(&self, v: VertexId) -> usize {
        self.graph.degree(v)
    }

    #[inline]
    fn sample_neighbor<R: Rng + ?Sized>(&self, v: VertexId, rng: &mut R) -> Option<VertexId> {
        let table = self.tables.get(v as usize)?.as_ref()?;
        let idx = table.sample(rng);
        self.graph
            .neighbors(v)
            .ok()
            .and_then(|adj| adj.edge(idx))
            .map(|e| e.dst)
    }

    fn has_edge(&self, src: VertexId, dst: VertexId) -> bool {
        self.graph.has_edge(src, dst)
    }

    fn edge_bias(&self, src: VertexId, dst: VertexId) -> Option<f64> {
        let adj = self.graph.neighbors(src).ok()?;
        adj.find(dst)
            .and_then(|i| adj.edge(i))
            .map(|e| e.bias.value())
    }
}

impl DynamicWalkSystem for KnightKingBaseline {
    fn name(&self) -> &'static str {
        "KnightKing"
    }

    fn ingest(&mut self, batch: &UpdateBatch, _mode: IngestMode) -> IngestStats {
        // lint:allow(determinism): IngestStats latency measurement for
        // the bench comparison harness; walk output never observes it.
        let start = std::time::Instant::now();
        let mut applied = 0;
        let mut skipped = 0;
        let mut touched: Vec<VertexId> = Vec::new();
        for event in batch.events() {
            let ok = match *event {
                UpdateEvent::Insert { src, dst, bias } => {
                    self.graph.insert_edge(src, dst, bias).is_ok()
                }
                UpdateEvent::Delete { src, dst } => self.graph.delete_edge(src, dst).is_ok(),
                UpdateEvent::UpdateBias { src, dst, bias } => {
                    self.graph.update_bias(src, dst, bias).is_ok()
                }
            };
            if ok {
                applied += 1;
                // The alias method must rebuild the affected vertex: O(d).
                // (Streaming mode rebuilds immediately; batched mode defers
                // to one rebuild per touched vertex below.)
                touched.push(event.src());
            } else {
                skipped += 1;
            }
        }
        touched.sort_unstable();
        touched.dedup();
        for v in touched {
            self.rebuild_vertex(v);
        }
        IngestStats {
            applied,
            skipped,
            elapsed: start.elapsed(),
        }
    }

    fn memory_bytes(&self) -> usize {
        self.graph.memory_bytes()
            + self
                .tables
                .iter()
                .flatten()
                .map(AliasTable::memory_bytes)
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bingo_graph::dynamic_graph::running_example;
    use bingo_graph::Bias;
    use bingo_sampling::rng::Pcg64;
    use bingo_sampling::stats::{empirical_distribution, max_abs_deviation};
    use rand::SeedableRng;

    #[test]
    fn build_creates_tables_only_for_non_isolated_vertices() {
        let kk = KnightKingBaseline::build(&running_example());
        assert_eq!(kk.num_vertices(), 6);
        assert_eq!(kk.degree(2), 3);
        assert!(kk.tables[2].is_some());
        assert!(kk.tables[5].is_none());
        let mut rng = Pcg64::seed_from_u64(1);
        assert_eq!(kk.sample_neighbor(5, &mut rng), None);
    }

    #[test]
    fn updates_rebuild_affected_tables() {
        let mut kk = KnightKingBaseline::build(&running_example());
        let batch = UpdateBatch::new(vec![
            UpdateEvent::Insert {
                src: 2,
                dst: 3,
                bias: Bias::from_int(12),
            },
            UpdateEvent::Delete { src: 2, dst: 1 },
            UpdateEvent::Delete { src: 2, dst: 99 },
        ]);
        let stats = kk.ingest(&batch, IngestMode::Batched);
        assert_eq!(stats.applied, 2);
        assert_eq!(stats.skipped, 1);
        // New distribution on vertex 2: neighbors 4 (4), 5 (3), 3 (12).
        let mut rng = Pcg64::seed_from_u64(2);
        let freq = empirical_distribution(
            |r| match kk.sample_neighbor(2, r).unwrap() {
                4 => 0,
                5 => 1,
                3 => 2,
                other => panic!("unexpected {other}"),
            },
            3,
            200_000,
            &mut rng,
        );
        assert!(max_abs_deviation(&freq, &[4.0 / 19.0, 3.0 / 19.0, 12.0 / 19.0]) < 0.01);
    }

    #[test]
    fn edge_queries_match_graph() {
        let kk = KnightKingBaseline::build(&running_example());
        assert!(kk.has_edge(2, 4));
        assert!(!kk.has_edge(4, 2));
        assert_eq!(kk.edge_bias(2, 5), Some(3.0));
        assert_eq!(kk.edge_bias(2, 9), None);
        assert!(kk.memory_bytes() > 0);
        assert_eq!(DynamicWalkSystem::name(&kk), "KnightKing");
    }
}

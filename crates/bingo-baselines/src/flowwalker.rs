//! FlowWalker-style baseline: reservoir sampling with no auxiliary state.
//!
//! FlowWalker (VLDB'24) performs every walk step by parallel weighted
//! reservoir sampling directly over the adjacency list, so it maintains no
//! sampling structure at all. Graph updates are therefore essentially free
//! (the paper's comparison simply "reloads the new graph after updates"),
//! but every sampling step costs a full `O(d)` scan of the vertex's edges —
//! the asymptotic behaviour Figure 16 measures, where FlowWalker's sampling
//! time collapses on high-degree graphs while its update time beats Bingo's.

use bingo_graph::{DynamicGraph, UpdateBatch, UpdateEvent, VertexId};
use bingo_sampling::reservoir_sample_indexed;
use bingo_walks::{DynamicWalkSystem, IngestMode, IngestStats, TransitionSampler};
use rand::Rng;

/// Reservoir-sampling walk system with zero auxiliary sampling state.
#[derive(Debug, Clone)]
pub struct FlowWalkerBaseline {
    graph: DynamicGraph,
    reloads: u64,
}

impl FlowWalkerBaseline {
    /// Build the baseline from a graph snapshot.
    pub fn build(graph: &DynamicGraph) -> Self {
        FlowWalkerBaseline {
            graph: graph.clone(),
            reloads: 0,
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &DynamicGraph {
        &self.graph
    }

    /// Number of graph reloads (one per ingested batch).
    pub fn reloads(&self) -> u64 {
        self.reloads
    }
}

impl TransitionSampler for FlowWalkerBaseline {
    fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    fn degree(&self, v: VertexId) -> usize {
        self.graph.degree(v)
    }

    #[inline]
    fn sample_neighbor<R: Rng + ?Sized>(&self, v: VertexId, rng: &mut R) -> Option<VertexId> {
        let adj = self.graph.neighbors(v).ok()?;
        if adj.is_empty() {
            return None;
        }
        // Weighted reservoir sampling: one O(d) pass, no auxiliary state.
        let idx = reservoir_sample_indexed(adj.edges().iter().map(|e| e.bias.value()), rng)?;
        adj.edge(idx).map(|e| e.dst)
    }

    fn has_edge(&self, src: VertexId, dst: VertexId) -> bool {
        self.graph.has_edge(src, dst)
    }

    fn edge_bias(&self, src: VertexId, dst: VertexId) -> Option<f64> {
        let adj = self.graph.neighbors(src).ok()?;
        adj.find(dst)
            .and_then(|i| adj.edge(i))
            .map(|e| e.bias.value())
    }
}

impl DynamicWalkSystem for FlowWalkerBaseline {
    fn name(&self) -> &'static str {
        "FlowWalker"
    }

    fn ingest(&mut self, batch: &UpdateBatch, _mode: IngestMode) -> IngestStats {
        // lint:allow(determinism): IngestStats latency measurement for
        // the bench comparison harness; walk output never observes it.
        let start = std::time::Instant::now();
        let mut applied = 0;
        let mut skipped = 0;
        for event in batch.events() {
            let ok = match *event {
                UpdateEvent::Insert { src, dst, bias } => {
                    self.graph.insert_edge(src, dst, bias).is_ok()
                }
                UpdateEvent::Delete { src, dst } => self.graph.delete_edge(src, dst).is_ok(),
                UpdateEvent::UpdateBias { src, dst, bias } => {
                    self.graph.update_bias(src, dst, bias).is_ok()
                }
            };
            if ok {
                applied += 1;
            } else {
                skipped += 1;
            }
        }
        // "Reload" the graph: FlowWalker keeps no sampling structure, so the
        // reload is just the graph mutation above plus a bookkeeping bump.
        self.reloads += 1;
        IngestStats {
            applied,
            skipped,
            elapsed: start.elapsed(),
        }
    }

    fn memory_bytes(&self) -> usize {
        self.graph.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bingo_graph::dynamic_graph::running_example;
    use bingo_graph::Bias;
    use bingo_sampling::rng::Pcg64;
    use bingo_sampling::stats::{empirical_distribution, max_abs_deviation};
    use rand::SeedableRng;

    #[test]
    fn sampling_matches_bias_distribution() {
        let fw = FlowWalkerBaseline::build(&running_example());
        let mut rng = Pcg64::seed_from_u64(1);
        let freq = empirical_distribution(
            |r| match fw.sample_neighbor(2, r).unwrap() {
                1 => 0,
                4 => 1,
                5 => 2,
                other => panic!("unexpected {other}"),
            },
            3,
            200_000,
            &mut rng,
        );
        assert!(max_abs_deviation(&freq, &[5.0 / 12.0, 4.0 / 12.0, 3.0 / 12.0]) < 0.01);
    }

    #[test]
    fn updates_are_visible_immediately() {
        let mut fw = FlowWalkerBaseline::build(&running_example());
        let batch = UpdateBatch::new(vec![
            UpdateEvent::Insert {
                src: 5,
                dst: 0,
                bias: Bias::from_int(2),
            },
            UpdateEvent::Delete { src: 2, dst: 1 },
            UpdateEvent::UpdateBias {
                src: 2,
                dst: 4,
                bias: Bias::from_int(10),
            },
            UpdateEvent::Delete { src: 2, dst: 77 },
        ]);
        let stats = fw.ingest(&batch, IngestMode::Streaming);
        assert_eq!(stats.applied, 3);
        assert_eq!(stats.skipped, 1);
        assert_eq!(fw.reloads(), 1);
        assert!(fw.has_edge(5, 0));
        assert!(!fw.has_edge(2, 1));
        assert_eq!(fw.edge_bias(2, 4), Some(10.0));
        let mut rng = Pcg64::seed_from_u64(2);
        assert!(fw.sample_neighbor(5, &mut rng).is_some());
    }

    #[test]
    fn isolated_vertex_samples_nothing() {
        let fw = FlowWalkerBaseline::build(&running_example());
        let mut rng = Pcg64::seed_from_u64(3);
        assert_eq!(fw.sample_neighbor(5, &mut rng), None);
        assert_eq!(fw.sample_neighbor(42, &mut rng), None);
        assert_eq!(DynamicWalkSystem::name(&fw), "FlowWalker");
        assert!(fw.memory_bytes() > 0);
        assert_eq!(fw.degree(2), 3);
        assert_eq!(fw.num_vertices(), 6);
    }
}

//! gSampler-style baseline: matrix-centric batch sampling over CSR + CDF.
//!
//! gSampler (SOSP'23) expresses graph sampling through matrix-centric APIs
//! over static CSR structures. It has no incremental update path, so — as in
//! the paper's evaluation — the whole sampling structure (CSR snapshot plus
//! per-vertex cumulative-distribution arrays for inverse transform sampling)
//! is reconstructed after every round of updates. Sampling costs `O(log d)`
//! per step (binary search in the vertex's CDF slice); the matrix
//! representation also carries noticeably more memory than the adjacency
//! list alone, which is why gSampler is the most memory-hungry system in
//! Table 3.

use bingo_graph::{CsrGraph, DynamicGraph, UpdateBatch, UpdateEvent, VertexId};
use bingo_walks::{DynamicWalkSystem, IngestMode, IngestStats, TransitionSampler};
use rand::Rng;

/// CSR + per-vertex CDF sampler rebuilt wholesale after every update round.
#[derive(Debug, Clone)]
pub struct GSamplerBaseline {
    graph: DynamicGraph,
    csr: CsrGraph,
    /// Per-vertex offsets into `cdf` (length `num_vertices + 1`).
    offsets: Vec<usize>,
    /// Per-edge cumulative bias, restarting at every vertex boundary.
    cdf: Vec<f64>,
    /// Number of full reconstructions performed (one per ingested batch).
    rebuilds: u64,
}

impl GSamplerBaseline {
    /// Build the baseline from a graph snapshot.
    pub fn build(graph: &DynamicGraph) -> Self {
        let graph = graph.clone();
        let mut baseline = GSamplerBaseline {
            csr: CsrGraph::default(),
            offsets: Vec::new(),
            cdf: Vec::new(),
            graph,
            rebuilds: 0,
        };
        baseline.reconstruct();
        baseline
    }

    /// Rebuild the CSR snapshot and every per-vertex CDF from the current
    /// graph state. `O(V + E)`.
    pub fn reconstruct(&mut self) {
        self.csr = self.graph.to_csr();
        let n = self.csr.num_vertices();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut cdf = Vec::with_capacity(self.csr.num_edges());
        offsets.push(0);
        for v in 0..n as VertexId {
            let mut running = 0.0;
            for &b in self.csr.biases(v) {
                running += b;
                cdf.push(running);
            }
            offsets.push(cdf.len());
        }
        self.offsets = offsets;
        self.cdf = cdf;
        self.rebuilds += 1;
    }

    /// Number of full reconstructions performed so far.
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds
    }

    /// The per-vertex CDF slice (cumulative biases of `v`'s edges).
    pub fn vertex_cdf(&self, v: VertexId) -> &[f64] {
        let v = v as usize;
        if v + 1 >= self.offsets.len() {
            return &[];
        }
        &self.cdf[self.offsets[v]..self.offsets[v + 1]]
    }
}

impl TransitionSampler for GSamplerBaseline {
    fn num_vertices(&self) -> usize {
        self.csr.num_vertices()
    }

    fn degree(&self, v: VertexId) -> usize {
        self.csr.degree(v)
    }

    #[inline]
    fn sample_neighbor<R: Rng + ?Sized>(&self, v: VertexId, rng: &mut R) -> Option<VertexId> {
        let cdf = self.vertex_cdf(v);
        if cdf.is_empty() {
            return None;
        }
        let total = cdf[cdf.len() - 1];
        if total <= 0.0 {
            return None;
        }
        // Inverse transform sampling: O(log d) binary search.
        let x = rng.gen::<f64>() * total;
        let idx = cdf.partition_point(|&c| c <= x).min(cdf.len() - 1);
        self.csr.neighbors(v).get(idx).copied()
    }

    fn has_edge(&self, src: VertexId, dst: VertexId) -> bool {
        self.csr.neighbors(src).contains(&dst)
    }

    fn edge_bias(&self, src: VertexId, dst: VertexId) -> Option<f64> {
        let pos = self.csr.neighbors(src).iter().position(|&d| d == dst)?;
        self.csr.biases(src).get(pos).copied()
    }
}

impl DynamicWalkSystem for GSamplerBaseline {
    fn name(&self) -> &'static str {
        "gSampler"
    }

    fn ingest(&mut self, batch: &UpdateBatch, _mode: IngestMode) -> IngestStats {
        // lint:allow(determinism): IngestStats latency measurement for
        // the bench comparison harness; walk output never observes it.
        let start = std::time::Instant::now();
        let mut applied = 0;
        let mut skipped = 0;
        for event in batch.events() {
            let ok = match *event {
                UpdateEvent::Insert { src, dst, bias } => {
                    self.graph.insert_edge(src, dst, bias).is_ok()
                }
                UpdateEvent::Delete { src, dst } => self.graph.delete_edge(src, dst).is_ok(),
                UpdateEvent::UpdateBias { src, dst, bias } => {
                    self.graph.update_bias(src, dst, bias).is_ok()
                }
            };
            if ok {
                applied += 1;
            } else {
                skipped += 1;
            }
        }
        // No incremental path: reconstruct the whole sampling structure.
        self.reconstruct();
        IngestStats {
            applied,
            skipped,
            elapsed: start.elapsed(),
        }
    }

    fn memory_bytes(&self) -> usize {
        // The matrix-centric representation keeps the dynamic graph, the CSR
        // snapshot, the offsets + CDF arrays, and intermediate matrix
        // buffers (modelled as one extra edge-sized array — the smallest
        // overhead gSampler's matrix API incurs).
        self.graph.memory_bytes()
            + self.csr.memory_bytes()
            + self.offsets.capacity() * std::mem::size_of::<usize>()
            + self.cdf.capacity() * std::mem::size_of::<f64>()
            + self.csr.num_edges() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bingo_graph::dynamic_graph::running_example;
    use bingo_graph::Bias;
    use bingo_sampling::rng::Pcg64;
    use bingo_sampling::stats::{empirical_distribution, max_abs_deviation};
    use rand::SeedableRng;

    #[test]
    fn build_produces_consistent_csr_and_cdf() {
        let gs = GSamplerBaseline::build(&running_example());
        assert_eq!(gs.num_vertices(), 6);
        assert_eq!(gs.degree(2), 3);
        assert_eq!(gs.rebuilds(), 1);
        assert_eq!(gs.cdf.len(), 8);
        assert_eq!(gs.vertex_cdf(2), &[5.0, 9.0, 12.0]);
        assert!(gs.vertex_cdf(5).is_empty());
        assert!(gs.memory_bytes() > 0);
    }

    #[test]
    fn sampling_matches_bias_distribution() {
        let gs = GSamplerBaseline::build(&running_example());
        let mut rng = Pcg64::seed_from_u64(1);
        let freq = empirical_distribution(
            |r| match gs.sample_neighbor(2, r).unwrap() {
                1 => 0,
                4 => 1,
                5 => 2,
                other => panic!("unexpected {other}"),
            },
            3,
            200_000,
            &mut rng,
        );
        assert!(max_abs_deviation(&freq, &[5.0 / 12.0, 4.0 / 12.0, 3.0 / 12.0]) < 0.01);
    }

    #[test]
    fn ingestion_reconstructs_everything() {
        let mut gs = GSamplerBaseline::build(&running_example());
        let batch = UpdateBatch::new(vec![
            UpdateEvent::Insert {
                src: 2,
                dst: 3,
                bias: Bias::from_int(3),
            },
            UpdateEvent::Delete { src: 0, dst: 1 },
            UpdateEvent::Delete { src: 0, dst: 99 },
        ]);
        let stats = gs.ingest(&batch, IngestMode::Batched);
        assert_eq!(stats.applied, 2);
        assert_eq!(stats.skipped, 1);
        assert_eq!(gs.rebuilds(), 2);
        assert!(gs.has_edge(2, 3));
        assert!(!gs.has_edge(0, 1));
        assert_eq!(gs.edge_bias(2, 3), Some(3.0));
        assert_eq!(DynamicWalkSystem::name(&gs), "gSampler");
    }

    #[test]
    fn isolated_vertex_samples_nothing() {
        let gs = GSamplerBaseline::build(&running_example());
        let mut rng = Pcg64::seed_from_u64(2);
        assert_eq!(gs.sample_neighbor(5, &mut rng), None);
        assert_eq!(gs.sample_neighbor(100, &mut rng), None);
    }
}

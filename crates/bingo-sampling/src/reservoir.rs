//! Weighted reservoir sampling.
//!
//! FlowWalker — one of the baselines the paper compares against — performs
//! every random-walk step by weighted reservoir sampling directly over the
//! adjacency list, keeping no auxiliary structure at all. Updates are
//! therefore free, but each sample costs a full `O(d)` scan, which is the
//! asymptotic weakness Figure 16 of the paper measures.
//!
//! Two variants are provided:
//!
//! * [`reservoir_sample_weighted`] — the classical A-Res scheme of Efraimidis
//!   and Spirakis: each item gets key `u^(1/w)` and the maximum key wins.
//! * [`reservoir_sample_indexed`] — a single-pass "running total" scheme that
//!   replaces the current winner with item `i` with probability
//!   `w_i / Σ_{j ≤ i} w_j`; it avoids `powf` in the hot loop.

use rand::Rng;

/// Weighted reservoir sampling (A-Res): returns the index of the selected
/// item, or `None` if the iterator is empty or all weights are zero.
///
/// Complexity: one pass, `O(d)` time, `O(1)` space.
pub fn reservoir_sample_weighted<R, I>(weights: I, rng: &mut R) -> Option<usize>
where
    R: Rng + ?Sized,
    I: IntoIterator<Item = f64>,
{
    let mut best_key = f64::NEG_INFINITY;
    let mut best_idx: Option<usize> = None;
    for (i, w) in weights.into_iter().enumerate() {
        if w <= 0.0 || !w.is_finite() {
            continue;
        }
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let key = u.powf(1.0 / w);
        if key > best_key {
            best_key = key;
            best_idx = Some(i);
        }
    }
    best_idx
}

/// Single-pass weighted selection using running totals: item `i` replaces the
/// current selection with probability `w_i / Σ_{j ≤ i} w_j`. Equivalent in
/// distribution to [`reservoir_sample_weighted`] but cheaper per item.
///
/// Complexity: one pass, `O(d)` time, `O(1)` space.
pub fn reservoir_sample_indexed<R, I>(weights: I, rng: &mut R) -> Option<usize>
where
    R: Rng + ?Sized,
    I: IntoIterator<Item = f64>,
{
    let mut running = 0.0;
    let mut selected: Option<usize> = None;
    for (i, w) in weights.into_iter().enumerate() {
        if w <= 0.0 || !w.is_finite() {
            continue;
        }
        running += w;
        if selected.is_none() || rng.gen::<f64>() * running < w {
            selected = Some(i);
        }
    }
    selected
}

/// Draw `k` distinct indices by weighted reservoir sampling without
/// replacement (A-Res with a small reservoir). Returns fewer than `k`
/// indices if fewer than `k` items have positive weight.
pub fn reservoir_sample_k<R, I>(weights: I, k: usize, rng: &mut R) -> Vec<usize>
where
    R: Rng + ?Sized,
    I: IntoIterator<Item = f64>,
{
    if k == 0 {
        return Vec::new();
    }
    // (key, index) min-heap emulated with a sorted small vector; k is small
    // in every use in this repository (mini-batch sampling).
    let mut reservoir: Vec<(f64, usize)> = Vec::with_capacity(k);
    for (i, w) in weights.into_iter().enumerate() {
        if w <= 0.0 || !w.is_finite() {
            continue;
        }
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let key = u.powf(1.0 / w);
        if reservoir.len() < k {
            reservoir.push((key, i));
            reservoir.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite keys"));
        } else if key > reservoir[0].0 {
            reservoir[0] = (key, i);
            reservoir.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite keys"));
        }
    }
    reservoir.into_iter().map(|(_, i)| i).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Pcg64;
    use crate::stats::{chi_square_uniformity, empirical_distribution};
    use rand::SeedableRng;

    #[test]
    fn empty_input_returns_none() {
        let mut rng = Pcg64::seed_from_u64(1);
        assert_eq!(
            reservoir_sample_weighted(std::iter::empty(), &mut rng),
            None
        );
        assert_eq!(reservoir_sample_indexed(std::iter::empty(), &mut rng), None);
    }

    #[test]
    fn all_zero_weights_return_none() {
        let mut rng = Pcg64::seed_from_u64(2);
        let w = [0.0, 0.0, 0.0];
        assert_eq!(reservoir_sample_weighted(w.iter().copied(), &mut rng), None);
        assert_eq!(reservoir_sample_indexed(w.iter().copied(), &mut rng), None);
    }

    #[test]
    fn single_positive_weight_always_selected() {
        let mut rng = Pcg64::seed_from_u64(3);
        let w = [0.0, 7.0, 0.0];
        for _ in 0..100 {
            assert_eq!(
                reservoir_sample_weighted(w.iter().copied(), &mut rng),
                Some(1)
            );
            assert_eq!(
                reservoir_sample_indexed(w.iter().copied(), &mut rng),
                Some(1)
            );
        }
    }

    #[test]
    fn ares_distribution_matches_weights() {
        let w = [5.0, 4.0, 3.0];
        let mut rng = Pcg64::seed_from_u64(4);
        let freq = empirical_distribution(
            |r| reservoir_sample_weighted(w.iter().copied(), r).unwrap(),
            3,
            200_000,
            &mut rng,
        );
        assert!((freq[0] - 5.0 / 12.0).abs() < 0.01);
        assert!((freq[2] - 3.0 / 12.0).abs() < 0.01);
    }

    #[test]
    fn indexed_distribution_matches_weights() {
        let w = [1.0, 2.0, 3.0, 4.0];
        let mut rng = Pcg64::seed_from_u64(5);
        let freq = empirical_distribution(
            |r| reservoir_sample_indexed(w.iter().copied(), r).unwrap(),
            4,
            200_000,
            &mut rng,
        );
        for (i, f) in freq.iter().enumerate() {
            assert!((f - (i + 1) as f64 / 10.0).abs() < 0.01);
        }
    }

    #[test]
    fn uniform_weights_pass_chi_square() {
        let w = [1.0; 16];
        let mut rng = Pcg64::seed_from_u64(6);
        let mut counts = vec![0usize; 16];
        for _ in 0..64_000 {
            counts[reservoir_sample_indexed(w.iter().copied(), &mut rng).unwrap()] += 1;
        }
        // 15 degrees of freedom, 0.999 critical value ≈ 37.7.
        assert!(chi_square_uniformity(&counts) < 37.7);
    }

    #[test]
    fn sample_k_returns_distinct_indices() {
        let w = [1.0, 2.0, 3.0, 4.0, 5.0];
        let mut rng = Pcg64::seed_from_u64(7);
        let picks = reservoir_sample_k(w.iter().copied(), 3, &mut rng);
        assert_eq!(picks.len(), 3);
        let mut sorted = picks.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 3);
    }

    #[test]
    fn sample_k_handles_k_larger_than_population() {
        let w = [1.0, 2.0];
        let mut rng = Pcg64::seed_from_u64(8);
        let picks = reservoir_sample_k(w.iter().copied(), 10, &mut rng);
        assert_eq!(picks.len(), 2);
        assert!(reservoir_sample_k(w.iter().copied(), 0, &mut rng).is_empty());
    }
}

//! Walker/Vose alias tables.
//!
//! The alias method splits the `d` candidates into `d` equally-sized buckets,
//! each containing at most two candidates, so that a sample is a uniform
//! bucket choice followed by a single biased coin flip — `O(1)` per sample.
//! Construction is `O(d)`, and any weight change requires a rebuild, which is
//! exactly the `O(d)` update cost that motivates Bingo's radix factorization
//! (Table 1). Bingo itself uses small alias tables for its *inter-group*
//! sampling stage, where `d` is the number of radix groups (≤ 64).

use crate::{validate_weights, DynamicSampler, Result, Sampler, SamplingError};
use rand::Rng;

/// One bucket of the alias table.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Bucket {
    /// Probability of keeping the primary candidate (scaled to `[0, 1]`).
    prob: f64,
    /// The alternative candidate stored in this bucket.
    alias: u32,
}

/// A Walker/Vose alias table over candidates `0..len`.
#[derive(Debug, Clone)]
pub struct AliasTable {
    buckets: Vec<Bucket>,
    weights: Vec<f64>,
    total: f64,
}

impl AliasTable {
    /// Build an alias table from the given weights.
    ///
    /// Complexity: `O(d)` time and space.
    pub fn new(weights: &[f64]) -> Result<Self> {
        let total = validate_weights(weights)?;
        let mut table = AliasTable {
            buckets: Vec::new(),
            weights: weights.to_vec(),
            total,
        };
        table.rebuild_internal();
        Ok(table)
    }

    /// Build an alias table for a uniform distribution over `n` candidates.
    pub fn uniform(n: usize) -> Result<Self> {
        if n == 0 {
            return Err(SamplingError::EmptyCandidateSet);
        }
        Self::new(&vec![1.0; n])
    }

    /// The weight of candidate `i`.
    pub fn weight(&self, i: usize) -> Option<f64> {
        self.weights.get(i).copied()
    }

    /// The raw weights backing this table.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Rebuild the table from the current weights (Vose's algorithm).
    fn rebuild_internal(&mut self) {
        let d = self.weights.len();
        self.total = self.weights.iter().sum();
        let avg = self.total / d as f64;
        let mut buckets = vec![
            Bucket {
                prob: 1.0,
                alias: 0
            };
            d
        ];
        // Partition candidates into "small" (below average) and "large".
        let mut small: Vec<(usize, f64)> = Vec::new();
        let mut large: Vec<(usize, f64)> = Vec::new();
        for (i, &w) in self.weights.iter().enumerate() {
            if w < avg {
                small.push((i, w));
            } else {
                large.push((i, w));
            }
        }
        while let (Some(&(si, sw)), true) = (small.last(), !large.is_empty()) {
            small.pop();
            let (li, lw) = large.pop().expect("large is non-empty");
            buckets[si] = Bucket {
                prob: sw / avg,
                alias: li as u32,
            };
            let remaining = lw - (avg - sw);
            if remaining < avg {
                small.push((li, remaining));
            } else {
                large.push((li, remaining));
            }
        }
        // Whatever is left fills its bucket entirely (prob 1.0).
        for (i, _) in small.into_iter().chain(large) {
            buckets[i] = Bucket {
                prob: 1.0,
                alias: i as u32,
            };
        }
        self.buckets = buckets;
    }

    /// Number of memory bytes used by the table (buckets plus stored
    /// weights), used by the memory-accounting experiments.
    pub fn memory_bytes(&self) -> usize {
        self.buckets.len() * std::mem::size_of::<Bucket>()
            + self.weights.len() * std::mem::size_of::<f64>()
    }
}

impl Sampler for AliasTable {
    fn len(&self) -> usize {
        self.weights.len()
    }

    fn total_weight(&self) -> f64 {
        self.total
    }

    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        debug_assert!(!self.buckets.is_empty());
        let i = rng.gen_range(0..self.buckets.len());
        let bucket = self.buckets[i];
        if rng.gen::<f64>() < bucket.prob {
            i
        } else {
            bucket.alias as usize
        }
    }
}

impl DynamicSampler for AliasTable {
    /// Append a candidate. The alias method must rebuild: `O(d)`.
    fn insert(&mut self, weight: f64) -> Result<usize> {
        if !weight.is_finite() || weight < 0.0 {
            return Err(SamplingError::InvalidWeight {
                index: self.weights.len(),
                value: weight,
            });
        }
        self.weights.push(weight);
        self.rebuild_internal();
        Ok(self.weights.len() - 1)
    }

    /// Swap-remove a candidate and rebuild: `O(d)`.
    fn remove(&mut self, index: usize) -> Result<Option<usize>> {
        if index >= self.weights.len() {
            return Err(SamplingError::IndexOutOfBounds {
                index,
                len: self.weights.len(),
            });
        }
        self.weights.swap_remove(index);
        if self.weights.is_empty() {
            self.buckets.clear();
            self.total = 0.0;
            return Ok(None);
        }
        self.rebuild_internal();
        let moved = if index < self.weights.len() {
            Some(self.weights.len())
        } else {
            None
        };
        Ok(moved)
    }

    /// Change a weight and rebuild: `O(d)`.
    fn update_weight(&mut self, index: usize, weight: f64) -> Result<()> {
        if index >= self.weights.len() {
            return Err(SamplingError::IndexOutOfBounds {
                index,
                len: self.weights.len(),
            });
        }
        if !weight.is_finite() || weight < 0.0 {
            return Err(SamplingError::InvalidWeight {
                index,
                value: weight,
            });
        }
        self.weights[index] = weight;
        self.rebuild_internal();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Pcg64;
    use crate::stats::empirical_distribution;
    use rand::SeedableRng;

    #[test]
    fn rejects_empty_and_zero() {
        assert!(AliasTable::new(&[]).is_err());
        assert!(AliasTable::new(&[0.0, 0.0]).is_err());
    }

    #[test]
    fn uniform_table_has_full_buckets() {
        let t = AliasTable::uniform(8).unwrap();
        assert_eq!(t.len(), 8);
        for b in &t.buckets {
            assert!((b.prob - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn single_candidate_always_sampled() {
        let t = AliasTable::new(&[3.5]).unwrap();
        let mut rng = Pcg64::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(t.sample(&mut rng), 0);
        }
    }

    #[test]
    fn matches_paper_running_example() {
        // Vertex 2 of the running example: biases 5, 4, 3.
        let t = AliasTable::new(&[5.0, 4.0, 3.0]).unwrap();
        let mut rng = Pcg64::seed_from_u64(42);
        let freq = empirical_distribution(|r| t.sample(r), 3, 300_000, &mut rng);
        assert!((freq[0] - 5.0 / 12.0).abs() < 0.01);
        assert!((freq[1] - 4.0 / 12.0).abs() < 0.01);
        assert!((freq[2] - 3.0 / 12.0).abs() < 0.01);
    }

    #[test]
    fn skewed_distribution_is_respected() {
        let weights = [100.0, 1.0, 1.0, 1.0];
        let t = AliasTable::new(&weights).unwrap();
        let mut rng = Pcg64::seed_from_u64(2);
        let freq = empirical_distribution(|r| t.sample(r), 4, 200_000, &mut rng);
        assert!((freq[0] - 100.0 / 103.0).abs() < 0.01);
    }

    #[test]
    fn zero_weight_candidate_never_sampled() {
        let t = AliasTable::new(&[0.0, 1.0, 2.0]).unwrap();
        let mut rng = Pcg64::seed_from_u64(3);
        for _ in 0..10_000 {
            assert_ne!(t.sample(&mut rng), 0);
        }
    }

    #[test]
    fn insert_changes_distribution() {
        let mut t = AliasTable::new(&[1.0, 1.0]).unwrap();
        let idx = t.insert(2.0).unwrap();
        assert_eq!(idx, 2);
        assert_eq!(t.len(), 3);
        assert!((t.total_weight() - 4.0).abs() < 1e-12);
        let mut rng = Pcg64::seed_from_u64(4);
        let freq = empirical_distribution(|r| t.sample(r), 3, 200_000, &mut rng);
        assert!((freq[2] - 0.5).abs() < 0.01);
    }

    #[test]
    fn remove_swaps_last_candidate() {
        let mut t = AliasTable::new(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        let moved = t.remove(1).unwrap();
        // Candidate 3 (weight 4.0) moved into slot 1.
        assert_eq!(moved, Some(3));
        assert_eq!(t.len(), 3);
        assert_eq!(t.weight(1), Some(4.0));
        // Removing the final slot moves nothing.
        let moved = t.remove(2).unwrap();
        assert_eq!(moved, None);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn remove_last_remaining_candidate_empties_table() {
        let mut t = AliasTable::new(&[1.0]).unwrap();
        assert_eq!(t.remove(0).unwrap(), None);
        assert!(t.is_empty());
        assert_eq!(t.total_weight(), 0.0);
    }

    #[test]
    fn update_weight_rebuilds() {
        let mut t = AliasTable::new(&[1.0, 1.0]).unwrap();
        t.update_weight(0, 9.0).unwrap();
        let mut rng = Pcg64::seed_from_u64(5);
        let freq = empirical_distribution(|r| t.sample(r), 2, 100_000, &mut rng);
        assert!((freq[0] - 0.9).abs() < 0.01);
    }

    #[test]
    fn out_of_bounds_operations_fail() {
        let mut t = AliasTable::new(&[1.0]).unwrap();
        assert!(t.remove(5).is_err());
        assert!(t.update_weight(5, 1.0).is_err());
        assert!(t.insert(f64::NAN).is_err());
        assert!(t.update_weight(0, -1.0).is_err());
    }

    #[test]
    fn memory_bytes_grows_with_candidates() {
        let small = AliasTable::uniform(4).unwrap();
        let large = AliasTable::uniform(400).unwrap();
        assert!(large.memory_bytes() > small.memory_bytes());
    }
}

//! # bingo-sampling
//!
//! Classical Monte Carlo sampling algorithms used throughout the Bingo
//! reproduction, both as building blocks of the radix-factorized sampler and
//! as the baselines the paper compares against (Table 1):
//!
//! * [`AliasTable`] — Walker/Vose alias method: `O(d)` construction, `O(1)`
//!   sampling, `O(d)` per update (rebuild).
//! * [`CdfTable`] — inverse transform sampling on a prefix-sum array:
//!   `O(d)` construction, `O(log d)` sampling, `O(1)` append / `O(d)` delete.
//! * [`RejectionSampler`] — rejection sampling against the maximum bias:
//!   `O(1)` updates, expected `O(d·max(w)/Σw)` sampling.
//! * [`reservoir`] — weighted reservoir sampling (the FlowWalker substrate):
//!   no auxiliary state, `O(d)` per sample.
//!
//! All samplers implement the [`Sampler`] trait and operate on non-negative
//! `f64` weights. Deterministic, seedable RNGs live in [`rng`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alias;
pub mod its;
pub mod rejection;
pub mod reservoir;
pub mod rng;
pub mod stats;

pub use alias::AliasTable;
pub use its::CdfTable;
pub use rejection::RejectionSampler;
pub use reservoir::{reservoir_sample_indexed, reservoir_sample_weighted};

use rand::Rng;

/// Errors produced by sampler construction and updates.
#[derive(Debug, Clone, PartialEq)]
pub enum SamplingError {
    /// The candidate set is empty, so nothing can be sampled.
    EmptyCandidateSet,
    /// A weight was negative or not finite.
    InvalidWeight {
        /// Index of the offending weight.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// All weights are zero; the distribution is undefined.
    ZeroTotalWeight,
    /// An index passed to an update operation is out of bounds.
    IndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// The number of candidates currently stored.
        len: usize,
    },
}

impl std::fmt::Display for SamplingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SamplingError::EmptyCandidateSet => write!(f, "candidate set is empty"),
            SamplingError::InvalidWeight { index, value } => {
                write!(f, "invalid weight {value} at index {index}")
            }
            SamplingError::ZeroTotalWeight => write!(f, "all weights are zero"),
            SamplingError::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for {len} candidates")
            }
        }
    }
}

impl std::error::Error for SamplingError {}

/// Result alias for sampling operations.
pub type Result<T> = std::result::Result<T, SamplingError>;

/// A discrete sampler over candidates `0..len()` with fixed weights.
///
/// The probability of returning candidate `i` must equal
/// `w_i / Σ_j w_j` (Equation 2 of the paper).
pub trait Sampler {
    /// Number of candidates in the sampling space.
    fn len(&self) -> usize;

    /// Whether the sampling space is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sum of all weights.
    fn total_weight(&self) -> f64;

    /// Draw one candidate index according to the weight distribution.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize;
}

/// A sampler whose candidate set can be mutated in place.
///
/// The per-operation complexities differ between implementations and are the
/// subject of Table 1 in the paper.
pub trait DynamicSampler: Sampler {
    /// Append a new candidate with the given weight, returning its index.
    fn insert(&mut self, weight: f64) -> Result<usize>;

    /// Remove the candidate at `index`. Implementations may reorder the
    /// remaining candidates (swap-remove); the return value is the index of
    /// the candidate that was moved into `index`, if any.
    fn remove(&mut self, index: usize) -> Result<Option<usize>>;

    /// Change the weight of candidate `index`.
    fn update_weight(&mut self, index: usize, weight: f64) -> Result<()>;
}

/// Validate a slice of weights: all finite and non-negative with a positive
/// total. Returns the total weight.
pub fn validate_weights(weights: &[f64]) -> Result<f64> {
    if weights.is_empty() {
        return Err(SamplingError::EmptyCandidateSet);
    }
    let mut total = 0.0;
    for (index, &value) in weights.iter().enumerate() {
        if !value.is_finite() || value < 0.0 {
            return Err(SamplingError::InvalidWeight { index, value });
        }
        total += value;
    }
    if total <= 0.0 {
        return Err(SamplingError::ZeroTotalWeight);
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_weights_accepts_positive() {
        assert_eq!(validate_weights(&[1.0, 2.0, 3.0]).unwrap(), 6.0);
    }

    #[test]
    fn validate_weights_rejects_empty() {
        assert_eq!(
            validate_weights(&[]).unwrap_err(),
            SamplingError::EmptyCandidateSet
        );
    }

    #[test]
    fn validate_weights_rejects_negative() {
        let err = validate_weights(&[1.0, -2.0]).unwrap_err();
        assert!(matches!(err, SamplingError::InvalidWeight { index: 1, .. }));
    }

    #[test]
    fn validate_weights_rejects_nan() {
        let err = validate_weights(&[f64::NAN]).unwrap_err();
        assert!(matches!(err, SamplingError::InvalidWeight { index: 0, .. }));
    }

    #[test]
    fn validate_weights_rejects_all_zero() {
        assert_eq!(
            validate_weights(&[0.0, 0.0]).unwrap_err(),
            SamplingError::ZeroTotalWeight
        );
    }

    #[test]
    fn error_display_is_informative() {
        let msg = format!("{}", SamplingError::IndexOutOfBounds { index: 5, len: 3 });
        assert!(msg.contains('5') && msg.contains('3'));
    }
}

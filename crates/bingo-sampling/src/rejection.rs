//! Rejection sampling.
//!
//! Rejection sampling keeps no auxiliary structure beyond the maximum bias:
//! pick a candidate uniformly, accept it with probability `w_i / max(w)`.
//! Updates are `O(1)` (amortized — deleting the maximum requires a rescan),
//! but the expected sampling cost is `O(d · max(w) / Σ w)`, which degrades
//! badly on skewed bias distributions. Bingo uses bounded-rejection sampling
//! for its *dense* groups, where the acceptance rate is ≥ α% by construction.

use crate::{validate_weights, DynamicSampler, Result, Sampler, SamplingError};
use rand::Rng;

/// A rejection sampler over an explicit weight vector.
#[derive(Debug, Clone)]
pub struct RejectionSampler {
    weights: Vec<f64>,
    max_weight: f64,
    total: f64,
}

impl RejectionSampler {
    /// Build a rejection sampler. `O(d)` (one pass for the maximum).
    pub fn new(weights: &[f64]) -> Result<Self> {
        let total = validate_weights(weights)?;
        let max_weight = weights.iter().cloned().fold(0.0, f64::max);
        Ok(RejectionSampler {
            weights: weights.to_vec(),
            max_weight,
            total,
        })
    }

    /// The current maximum weight (the rejection envelope).
    pub fn max_weight(&self) -> f64 {
        self.max_weight
    }

    /// The raw weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Expected number of trials per sample: `d · max(w) / Σ w`.
    pub fn expected_trials(&self) -> f64 {
        if self.total == 0.0 {
            return f64::INFINITY;
        }
        self.weights.len() as f64 * self.max_weight / self.total
    }

    /// Sample and also report how many trials were needed (used by the
    /// rejection-rate experiments).
    pub fn sample_counting<R: Rng + ?Sized>(&self, rng: &mut R) -> (usize, u32) {
        debug_assert!(!self.weights.is_empty() && self.max_weight > 0.0);
        let mut trials = 0;
        loop {
            trials += 1;
            let i = rng.gen_range(0..self.weights.len());
            let threshold = rng.gen::<f64>() * self.max_weight;
            if threshold < self.weights[i] {
                return (i, trials);
            }
        }
    }

    /// Number of memory bytes used (the weight vector only).
    pub fn memory_bytes(&self) -> usize {
        self.weights.len() * std::mem::size_of::<f64>()
    }

    fn rescan_max(&mut self) {
        self.max_weight = self.weights.iter().cloned().fold(0.0, f64::max);
    }
}

impl Sampler for RejectionSampler {
    fn len(&self) -> usize {
        self.weights.len()
    }

    fn total_weight(&self) -> f64 {
        self.total
    }

    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        self.sample_counting(rng).0
    }
}

impl DynamicSampler for RejectionSampler {
    /// Append a candidate: `O(1)`.
    fn insert(&mut self, weight: f64) -> Result<usize> {
        if !weight.is_finite() || weight < 0.0 {
            return Err(SamplingError::InvalidWeight {
                index: self.weights.len(),
                value: weight,
            });
        }
        self.weights.push(weight);
        self.total += weight;
        if weight > self.max_weight {
            self.max_weight = weight;
        }
        Ok(self.weights.len() - 1)
    }

    /// Swap-remove a candidate: `O(1)` unless the maximum is removed, in
    /// which case the envelope is rescanned (`O(d)`).
    fn remove(&mut self, index: usize) -> Result<Option<usize>> {
        if index >= self.weights.len() {
            return Err(SamplingError::IndexOutOfBounds {
                index,
                len: self.weights.len(),
            });
        }
        let removed = self.weights.swap_remove(index);
        self.total -= removed;
        let moved = if index < self.weights.len() {
            Some(self.weights.len())
        } else {
            None
        };
        if (removed - self.max_weight).abs() < f64::EPSILON {
            self.rescan_max();
        }
        Ok(moved)
    }

    /// Update a weight: `O(1)` unless the old maximum shrinks.
    fn update_weight(&mut self, index: usize, weight: f64) -> Result<()> {
        if index >= self.weights.len() {
            return Err(SamplingError::IndexOutOfBounds {
                index,
                len: self.weights.len(),
            });
        }
        if !weight.is_finite() || weight < 0.0 {
            return Err(SamplingError::InvalidWeight {
                index,
                value: weight,
            });
        }
        let old = self.weights[index];
        self.weights[index] = weight;
        self.total += weight - old;
        if weight > self.max_weight {
            self.max_weight = weight;
        } else if (old - self.max_weight).abs() < f64::EPSILON {
            self.rescan_max();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Pcg64;
    use crate::stats::empirical_distribution;
    use rand::SeedableRng;

    #[test]
    fn distribution_matches_weights() {
        let s = RejectionSampler::new(&[5.0, 4.0, 3.0]).unwrap();
        let mut rng = Pcg64::seed_from_u64(21);
        let freq = empirical_distribution(|r| r_sample(&s, r), 3, 300_000, &mut rng);
        assert!((freq[0] - 5.0 / 12.0).abs() < 0.01);
        assert!((freq[1] - 4.0 / 12.0).abs() < 0.01);
        assert!((freq[2] - 3.0 / 12.0).abs() < 0.01);
    }

    fn r_sample<R: rand::Rng>(s: &RejectionSampler, rng: &mut R) -> usize {
        s.sample(rng)
    }

    #[test]
    fn expected_trials_reflects_skew() {
        let uniform = RejectionSampler::new(&[1.0; 10]).unwrap();
        assert!((uniform.expected_trials() - 1.0).abs() < 1e-9);
        let skewed = RejectionSampler::new(&[100.0, 1.0, 1.0, 1.0]).unwrap();
        assert!(skewed.expected_trials() > 3.0);
    }

    #[test]
    fn empirical_trials_track_expectation() {
        let s = RejectionSampler::new(&[10.0, 1.0, 1.0, 1.0, 1.0]).unwrap();
        let mut rng = Pcg64::seed_from_u64(22);
        let mut total_trials = 0u64;
        let n = 50_000;
        for _ in 0..n {
            total_trials += u64::from(s.sample_counting(&mut rng).1);
        }
        let mean = total_trials as f64 / n as f64;
        assert!((mean - s.expected_trials()).abs() < 0.15 * s.expected_trials());
    }

    #[test]
    fn insert_updates_envelope() {
        let mut s = RejectionSampler::new(&[1.0, 2.0]).unwrap();
        s.insert(10.0).unwrap();
        assert_eq!(s.max_weight(), 10.0);
        assert_eq!(s.total_weight(), 13.0);
    }

    #[test]
    fn removing_max_rescans_envelope() {
        let mut s = RejectionSampler::new(&[1.0, 9.0, 2.0]).unwrap();
        assert_eq!(s.max_weight(), 9.0);
        let moved = s.remove(1).unwrap();
        assert_eq!(moved, Some(2));
        assert_eq!(s.max_weight(), 2.0);
        assert!((s.total_weight() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn update_weight_maintains_envelope_and_total() {
        let mut s = RejectionSampler::new(&[4.0, 2.0]).unwrap();
        s.update_weight(0, 1.0).unwrap();
        assert_eq!(s.max_weight(), 2.0);
        assert!((s.total_weight() - 3.0).abs() < 1e-12);
        s.update_weight(1, 20.0).unwrap();
        assert_eq!(s.max_weight(), 20.0);
    }

    #[test]
    fn error_paths() {
        let mut s = RejectionSampler::new(&[1.0]).unwrap();
        assert!(s.remove(9).is_err());
        assert!(s.update_weight(9, 1.0).is_err());
        assert!(s.insert(f64::NAN).is_err());
        assert!(RejectionSampler::new(&[0.0]).is_err());
    }
}

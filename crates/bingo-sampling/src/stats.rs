//! Statistical helpers used by the test suites and the benchmark harness to
//! check that samplers reproduce the intended distributions (Theorem 4.1 of
//! the paper: the radix factorization must not change any transition
//! probability).

use rand::Rng;

/// Run `trials` draws of `sample` over `k` categories and return the observed
/// relative frequency of each category.
pub fn empirical_distribution<R, F>(mut sample: F, k: usize, trials: usize, rng: &mut R) -> Vec<f64>
where
    R: Rng + ?Sized,
    F: FnMut(&mut R) -> usize,
{
    let mut counts = vec![0usize; k];
    for _ in 0..trials {
        let s = sample(rng);
        assert!(s < k, "sample {s} out of range {k}");
        counts[s] += 1;
    }
    counts
        .into_iter()
        .map(|c| c as f64 / trials as f64)
        .collect()
}

/// Pearson chi-square statistic of observed counts against expected
/// probabilities. Categories with zero expected probability must have zero
/// observed counts (asserted).
pub fn chi_square(observed: &[usize], expected_probs: &[f64]) -> f64 {
    assert_eq!(observed.len(), expected_probs.len());
    let n: usize = observed.iter().sum();
    let mut stat = 0.0;
    for (&o, &p) in observed.iter().zip(expected_probs) {
        let e = p * n as f64;
        if e == 0.0 {
            assert_eq!(o, 0, "observed counts in a zero-probability category");
            continue;
        }
        let d = o as f64 - e;
        stat += d * d / e;
    }
    stat
}

/// Chi-square statistic of observed counts against a uniform distribution.
pub fn chi_square_uniformity(observed: &[usize]) -> f64 {
    let k = observed.len();
    chi_square(observed, &vec![1.0 / k as f64; k])
}

/// Maximum absolute difference between an observed frequency vector and the
/// expected probability vector (an L∞ distance, robust for quick checks).
pub fn max_abs_deviation(observed_freq: &[f64], expected_probs: &[f64]) -> f64 {
    observed_freq
        .iter()
        .zip(expected_probs)
        .map(|(o, e)| (o - e).abs())
        .fold(0.0, f64::max)
}

/// Normalize a weight vector into a probability vector. Returns an empty
/// vector when the total weight is zero.
pub fn normalize(weights: &[f64]) -> Vec<f64> {
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return Vec::new();
    }
    weights.iter().map(|w| w / total).collect()
}

/// Approximate upper critical value of the chi-square distribution at the
/// 99.9% level using the Wilson–Hilferty cube approximation. Good enough for
/// the coarse statistical assertions in the test suite.
pub fn chi_square_critical_999(dof: usize) -> f64 {
    let k = dof as f64;
    let z = 3.0902; // 99.9% standard normal quantile
    let term = 1.0 - 2.0 / (9.0 * k) + z * (2.0 / (9.0 * k)).sqrt();
    k * term * term * term
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Pcg64;
    use rand::SeedableRng;

    #[test]
    fn empirical_distribution_sums_to_one() {
        let mut rng = Pcg64::seed_from_u64(1);
        let freq = empirical_distribution(|r| r.gen_range(0..4), 4, 10_000, &mut rng);
        let sum: f64 = freq.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn chi_square_zero_for_exact_match() {
        let observed = [25usize, 25, 25, 25];
        assert_eq!(chi_square(&observed, &[0.25; 4]), 0.0);
    }

    #[test]
    fn chi_square_large_for_mismatch() {
        let observed = [100usize, 0, 0, 0];
        assert!(chi_square(&observed, &[0.25; 4]) > 100.0);
    }

    #[test]
    fn uniform_rng_passes_uniformity_test() {
        let mut rng = Pcg64::seed_from_u64(2);
        let mut counts = vec![0usize; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0..10)] += 1;
        }
        assert!(chi_square_uniformity(&counts) < chi_square_critical_999(9));
    }

    #[test]
    fn normalize_handles_zero_total() {
        assert!(normalize(&[0.0, 0.0]).is_empty());
        let p = normalize(&[1.0, 3.0]);
        assert_eq!(p, vec![0.25, 0.75]);
    }

    #[test]
    fn max_abs_deviation_detects_worst_category() {
        let d = max_abs_deviation(&[0.5, 0.5], &[0.4, 0.6]);
        assert!((d - 0.1).abs() < 1e-12);
    }

    #[test]
    fn critical_value_is_increasing_in_dof() {
        assert!(chi_square_critical_999(10) < chi_square_critical_999(50));
        // Sanity: 99.9% critical value for 9 dof is roughly 27.9.
        assert!((chi_square_critical_999(9) - 27.9).abs() < 1.5);
    }
}

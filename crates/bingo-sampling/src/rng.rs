//! Deterministic, seedable random number generators.
//!
//! The paper's GPU kernels use per-thread counter-based RNG; here we provide
//! small, fast, reproducible generators implementing [`rand::RngCore`] so
//! that every experiment in the repository can be replayed exactly.

use rand::{Error, RngCore, SeedableRng};

/// SplitMix64 generator, mainly used to expand seeds for the other RNGs.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a raw 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Produce the next 64-bit output.
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// PCG-XSH-RR 64/32-based generator with 128-bit state ("Pcg64" in the public
/// API). Fast, statistically strong, and reproducible across platforms.
#[derive(Debug, Clone)]
pub struct Pcg64 {
    state: u128,
    inc: u128,
}

const PCG_MULT: u128 = 0x2360_ED05_1FC6_5DA4_4385_DF64_9FCC_F645;

impl Pcg64 {
    /// Create a generator from an explicit state/stream pair.
    pub fn new(state: u128, stream: u128) -> Self {
        let mut rng = Self {
            state: 0,
            inc: (stream << 1) | 1,
        };
        rng.state = rng.state.wrapping_mul(PCG_MULT).wrapping_add(rng.inc);
        rng.state = rng.state.wrapping_add(state);
        rng.state = rng.state.wrapping_mul(PCG_MULT).wrapping_add(rng.inc);
        rng
    }

    /// Advance the state and return 64 pseudo-random bits (PCG-XSL-RR).
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let rot = (self.state >> 122) as u32;
        let xored = ((self.state >> 64) as u64) ^ (self.state as u64);
        xored.rotate_right(rot)
    }

    /// Derive an independent stream, used to give each parallel walker or
    /// update kernel its own generator.
    pub fn split(&mut self, stream: u64) -> Self {
        let s = ((self.next() as u128) << 64) | self.next() as u128;
        Pcg64::new(s, stream as u128)
    }

    /// The raw `(state, increment)` pair, for serializing an in-flight
    /// generator (e.g. a forwarded walker's RNG crossing a process
    /// boundary). Round-trips exactly through
    /// [`Pcg64::from_raw_parts`] — unlike [`Pcg64::new`], which scrambles
    /// its inputs to decorrelate user-chosen seeds.
    pub fn to_raw_parts(&self) -> (u128, u128) {
        (self.state, self.inc)
    }

    /// Rebuild a generator from a raw `(state, increment)` pair previously
    /// read with [`Pcg64::to_raw_parts`]. The low increment bit is forced
    /// to 1 (a PCG stream invariant) so no byte pattern can produce an
    /// invalid generator.
    pub fn from_raw_parts(state: u128, inc: u128) -> Self {
        Pcg64 {
            state,
            inc: inc | 1,
        }
    }
}

impl RngCore for Pcg64 {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> std::result::Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl SeedableRng for Pcg64 {
    type Seed = [u8; 16];

    fn from_seed(seed: Self::Seed) -> Self {
        let state = u128::from_le_bytes(seed);
        Pcg64::new(state, 0xda3e_39cb_94b9_5bdb)
    }

    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let lo = sm.next() as u128;
        let hi = sm.next() as u128;
        Pcg64::new((hi << 64) | lo, sm.next() as u128)
    }
}

/// Xorshift64* generator — the fastest option, used in hot sampling loops of
/// the benchmark harness where statistical quality requirements are mild.
#[derive(Debug, Clone)]
pub struct Xorshift64 {
    state: u64,
}

impl Xorshift64 {
    /// Create a generator; a zero seed is remapped to a fixed non-zero value.
    pub fn new(seed: u64) -> Self {
        Self {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Produce the next 64-bit output.
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn next(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

impl RngCore for Xorshift64 {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> std::result::Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl SeedableRng for Xorshift64 {
    type Seed = [u8; 8];

    fn from_seed(seed: Self::Seed) -> Self {
        Xorshift64::new(u64::from_le_bytes(seed))
    }

    fn seed_from_u64(seed: u64) -> Self {
        Xorshift64::new(SplitMix64::new(seed).next())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next(), b.next());
        }
    }

    #[test]
    fn pcg_is_deterministic_and_seed_sensitive() {
        let mut a = Pcg64::seed_from_u64(1);
        let mut b = Pcg64::seed_from_u64(1);
        let mut c = Pcg64::seed_from_u64(2);
        let xs: Vec<u64> = (0..50).map(|_| a.next()).collect();
        let ys: Vec<u64> = (0..50).map(|_| b.next()).collect();
        let zs: Vec<u64> = (0..50).map(|_| c.next()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn pcg_gen_range_is_in_bounds() {
        let mut rng = Pcg64::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let k = rng.gen_range(0..10usize);
            assert!(k < 10);
        }
    }

    #[test]
    fn pcg_output_is_roughly_uniform() {
        let mut rng = Pcg64::seed_from_u64(99);
        let mut buckets = [0usize; 16];
        let n = 64_000;
        for _ in 0..n {
            buckets[(rng.next() >> 60) as usize] += 1;
        }
        let expected = n as f64 / 16.0;
        for &b in &buckets {
            assert!((b as f64 - expected).abs() < expected * 0.15);
        }
    }

    #[test]
    fn pcg_split_streams_differ() {
        let mut base = Pcg64::seed_from_u64(5);
        let mut s1 = base.split(1);
        let mut s2 = base.split(2);
        let a: Vec<u64> = (0..20).map(|_| s1.next()).collect();
        let b: Vec<u64> = (0..20).map(|_| s2.next()).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn pcg_raw_parts_round_trip_mid_stream() {
        let mut rng = Pcg64::seed_from_u64(11);
        for _ in 0..17 {
            rng.next();
        }
        let (state, inc) = rng.to_raw_parts();
        let mut resumed = Pcg64::from_raw_parts(state, inc);
        let expect: Vec<u64> = (0..32).map(|_| rng.next()).collect();
        let got: Vec<u64> = (0..32).map(|_| resumed.next()).collect();
        assert_eq!(expect, got, "raw parts must resume the exact stream");
    }

    #[test]
    fn xorshift_nonzero_and_deterministic() {
        let mut a = Xorshift64::seed_from_u64(0);
        let mut b = Xorshift64::seed_from_u64(0);
        for _ in 0..100 {
            let x = a.next();
            assert_eq!(x, b.next());
            assert_ne!(x, 0);
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = Pcg64::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
        let mut rng = Xorshift64::seed_from_u64(3);
        let mut buf = [0u8; 7];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}

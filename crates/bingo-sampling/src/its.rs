//! Inverse Transform Sampling (ITS) over a prefix-sum (CDF) array.
//!
//! A compact array `C` stores the running sum of the candidate weights; a
//! sample draws `x ∈ [0, C[d])` uniformly and binary-searches for the first
//! `C[k] > x`. Sampling is `O(log d)`, construction `O(d)`, appending a
//! candidate `O(1)`, and deleting or changing an interior weight requires
//! recomputing the suffix of the prefix sums (`O(d)` worst case) — the cost
//! profile listed for ITS in Table 1 of the paper.

use crate::{validate_weights, DynamicSampler, Result, Sampler, SamplingError};
use rand::Rng;

/// A cumulative-distribution-function table for inverse transform sampling.
#[derive(Debug, Clone)]
pub struct CdfTable {
    /// `cdf[i]` is the sum of weights `0..=i`; strictly increasing for
    /// positive weights.
    cdf: Vec<f64>,
    weights: Vec<f64>,
}

impl CdfTable {
    /// Build a CDF table from the given weights. `O(d)`.
    pub fn new(weights: &[f64]) -> Result<Self> {
        validate_weights(weights)?;
        let mut cdf = Vec::with_capacity(weights.len());
        let mut running = 0.0;
        for &w in weights {
            running += w;
            cdf.push(running);
        }
        Ok(CdfTable {
            cdf,
            weights: weights.to_vec(),
        })
    }

    /// The weight of candidate `i`.
    pub fn weight(&self, i: usize) -> Option<f64> {
        self.weights.get(i).copied()
    }

    /// The raw weights backing this table.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The prefix-sum array (exposed for tests and benchmarks).
    pub fn cdf(&self) -> &[f64] {
        &self.cdf
    }

    /// Recompute the prefix sums starting at `from`. `O(d - from)`.
    fn recompute_from(&mut self, from: usize) {
        let mut running = if from == 0 { 0.0 } else { self.cdf[from - 1] };
        for i in from..self.weights.len() {
            running += self.weights[i];
            self.cdf[i] = running;
        }
        self.cdf.truncate(self.weights.len());
    }

    /// Number of memory bytes used (CDF array plus stored weights).
    pub fn memory_bytes(&self) -> usize {
        (self.cdf.len() + self.weights.len()) * std::mem::size_of::<f64>()
    }
}

impl Sampler for CdfTable {
    fn len(&self) -> usize {
        self.weights.len()
    }

    fn total_weight(&self) -> f64 {
        self.cdf.last().copied().unwrap_or(0.0)
    }

    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        debug_assert!(!self.cdf.is_empty());
        let total = self.total_weight();
        let x = rng.gen::<f64>() * total;
        // First index whose cumulative value is strictly greater than x.
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&x).expect("weights are finite"))
        {
            Ok(i) => (i + 1).min(self.cdf.len() - 1),
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

impl DynamicSampler for CdfTable {
    /// Append a candidate: `O(1)`.
    fn insert(&mut self, weight: f64) -> Result<usize> {
        if !weight.is_finite() || weight < 0.0 {
            return Err(SamplingError::InvalidWeight {
                index: self.weights.len(),
                value: weight,
            });
        }
        let total = self.total_weight();
        self.weights.push(weight);
        self.cdf.push(total + weight);
        Ok(self.weights.len() - 1)
    }

    /// Swap-remove a candidate: `O(d)` because the suffix of the prefix sums
    /// must be recomputed.
    fn remove(&mut self, index: usize) -> Result<Option<usize>> {
        if index >= self.weights.len() {
            return Err(SamplingError::IndexOutOfBounds {
                index,
                len: self.weights.len(),
            });
        }
        self.weights.swap_remove(index);
        let moved = if index < self.weights.len() {
            Some(self.weights.len())
        } else {
            None
        };
        self.cdf.pop();
        if !self.weights.is_empty() {
            self.recompute_from(index.min(self.weights.len().saturating_sub(1)));
        } else {
            self.cdf.clear();
        }
        Ok(moved)
    }

    /// Update a weight: `O(d)` suffix recomputation.
    fn update_weight(&mut self, index: usize, weight: f64) -> Result<()> {
        if index >= self.weights.len() {
            return Err(SamplingError::IndexOutOfBounds {
                index,
                len: self.weights.len(),
            });
        }
        if !weight.is_finite() || weight < 0.0 {
            return Err(SamplingError::InvalidWeight {
                index,
                value: weight,
            });
        }
        self.weights[index] = weight;
        self.recompute_from(index);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Pcg64;
    use crate::stats::empirical_distribution;
    use rand::SeedableRng;

    #[test]
    fn cdf_is_monotone_prefix_sum() {
        let t = CdfTable::new(&[5.0, 4.0, 3.0]).unwrap();
        assert_eq!(t.cdf(), &[5.0, 9.0, 12.0]);
        assert_eq!(t.total_weight(), 12.0);
    }

    #[test]
    fn rejects_invalid_input() {
        assert!(CdfTable::new(&[]).is_err());
        assert!(CdfTable::new(&[0.0]).is_err());
        assert!(CdfTable::new(&[-1.0, 2.0]).is_err());
    }

    #[test]
    fn sampling_matches_distribution() {
        let t = CdfTable::new(&[5.0, 4.0, 3.0]).unwrap();
        let mut rng = Pcg64::seed_from_u64(11);
        let freq = empirical_distribution(|r| t.sample(r), 3, 300_000, &mut rng);
        assert!((freq[0] - 5.0 / 12.0).abs() < 0.01);
        assert!((freq[1] - 4.0 / 12.0).abs() < 0.01);
        assert!((freq[2] - 3.0 / 12.0).abs() < 0.01);
    }

    #[test]
    fn zero_weight_interior_candidate_never_sampled() {
        let t = CdfTable::new(&[1.0, 0.0, 1.0]).unwrap();
        let mut rng = Pcg64::seed_from_u64(12);
        for _ in 0..20_000 {
            assert_ne!(t.sample(&mut rng), 1);
        }
    }

    #[test]
    fn insert_is_constant_time_append() {
        let mut t = CdfTable::new(&[1.0]).unwrap();
        for i in 0..100 {
            let idx = t.insert(1.0).unwrap();
            assert_eq!(idx, i + 1);
        }
        assert_eq!(t.len(), 101);
        assert!((t.total_weight() - 101.0).abs() < 1e-9);
    }

    #[test]
    fn remove_recomputes_suffix() {
        let mut t = CdfTable::new(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        let moved = t.remove(0).unwrap();
        assert_eq!(moved, Some(3));
        assert_eq!(t.weights(), &[4.0, 2.0, 3.0]);
        assert_eq!(t.cdf(), &[4.0, 6.0, 9.0]);
    }

    #[test]
    fn remove_everything_leaves_empty_table() {
        let mut t = CdfTable::new(&[1.0, 2.0]).unwrap();
        t.remove(1).unwrap();
        t.remove(0).unwrap();
        assert!(t.is_empty());
        assert_eq!(t.total_weight(), 0.0);
    }

    #[test]
    fn update_weight_recomputes_cdf() {
        let mut t = CdfTable::new(&[1.0, 2.0, 3.0]).unwrap();
        t.update_weight(1, 10.0).unwrap();
        assert_eq!(t.cdf(), &[1.0, 11.0, 14.0]);
        let mut rng = Pcg64::seed_from_u64(13);
        let freq = empirical_distribution(|r| t.sample(r), 3, 200_000, &mut rng);
        assert!((freq[1] - 10.0 / 14.0).abs() < 0.01);
    }

    #[test]
    fn error_paths() {
        let mut t = CdfTable::new(&[1.0]).unwrap();
        assert!(t.remove(3).is_err());
        assert!(t.update_weight(3, 1.0).is_err());
        assert!(t.insert(-0.5).is_err());
        assert!(t.update_weight(0, f64::INFINITY).is_err());
    }

    #[test]
    fn large_table_sampling_stays_in_bounds() {
        let weights: Vec<f64> = (1..=1000).map(|i| i as f64).collect();
        let t = CdfTable::new(&weights).unwrap();
        let mut rng = Pcg64::seed_from_u64(14);
        for _ in 0..10_000 {
            assert!(t.sample(&mut rng) < 1000);
        }
    }
}
